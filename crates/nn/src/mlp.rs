use cv_rng::SplitMix64;

use crate::layer::DenseCache;
use crate::scratch::BatchScratch;
use crate::{simd, Activation, Dense, Matrix, MlpScratch, NnError, LANE_WIDTH};

/// Precomputed lane-batched execution plan for an [`Mlp`].
///
/// Holds each layer's weights **transposed** (`out_dim × in_dim`, one
/// contiguous row per output feature) — the layout the broadcast-FMA lane
/// kernels stream — plus bias and activation. Built once per network by
/// [`Mlp::lane_plan`] and reused across every batched step; see
/// [`Mlp::forward_batch_into`].
#[derive(Debug, Clone)]
pub struct LanePlan {
    layers: Vec<LaneLayer>,
    input_dim: usize,
    output_dim: usize,
}

#[derive(Debug, Clone)]
struct LaneLayer {
    /// Transposed weights, `out_dim × in_dim`.
    wt: Matrix,
    bias: Vec<f64>,
    activation: Activation,
}

impl LanePlan {
    /// Input dimension of the planned network.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output dimension of the planned network.
    pub fn output_dim(&self) -> usize {
        self.output_dim
    }

    /// Lane-batched forward pass over an SoA input slab.
    ///
    /// `x` is `input_dim × `[`LANE_WIDTH`] (column `l` = episode lane `l`);
    /// `out` is resized to `output_dim × LANE_WIDTH`. Activations ping-pong
    /// through `scratch`; the final layer writes `out` directly. Zero heap
    /// allocation once the buffers have grown to shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `x` is not
    /// `input_dim × LANE_WIDTH`.
    pub fn forward_lanes_into(
        &self,
        x: &Matrix,
        scratch: &mut BatchScratch,
        out: &mut Matrix,
    ) -> Result<(), NnError> {
        if x.rows() != self.input_dim || x.cols() != LANE_WIDTH {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "forward_lanes: input {}x{} vs {}x{}",
                    x.rows(),
                    x.cols(),
                    self.input_dim,
                    LANE_WIDTH
                ),
            });
        }
        let BatchScratch { ping, pong } = scratch;
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            let last = i + 1 == n;
            // Ping-pong with the final layer redirected to `out`: layer 0
            // reads `x`, odd layers read `ping`, even layers read `pong`.
            let dst = if i == 0 {
                let dst = if last { &mut *out } else { &mut *ping };
                layer.wt.matmul_lanes_into(x, &layer.bias, dst)?;
                dst
            } else if i % 2 == 1 {
                let dst = if last { &mut *out } else { &mut *pong };
                layer.wt.matmul_lanes_into(ping, &layer.bias, dst)?;
                dst
            } else {
                let dst = if last { &mut *out } else { &mut *ping };
                layer.wt.matmul_lanes_into(pong, &layer.bias, dst)?;
                dst
            };
            simd::activate_lanes(layer.activation, dst.as_mut_slice());
        }
        Ok(())
    }
}

/// A multilayer perceptron: a stack of [`Dense`] layers.
///
/// The planners in the paper's case study are small MLPs over the five
/// scenario inputs `(t, p_0, v_0, τ_1,min, τ_1,max)` producing one
/// acceleration output.
///
/// # Example
///
/// ```
/// use cv_nn::{Activation, Matrix, Mlp};
///
/// let net = Mlp::new(&[5, 16, 16, 1], Activation::Tanh, Activation::Identity, 7)?;
/// assert_eq!(net.input_dim(), 5);
/// assert_eq!(net.output_dim(), 1);
/// let y = net.forward(&Matrix::zeros(3, 5))?;
/// assert_eq!((y.rows(), y.cols()), (3, 1));
/// # Ok::<(), cv_nn::NnError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Creates an MLP with layer sizes `sizes` (at least `[in, out]`),
    /// `hidden` activation on all but the last layer, and `output`
    /// activation on the last layer. Weights are Xavier-initialised from
    /// `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidArchitecture`] if `sizes.len() < 2` or any
    /// size is zero.
    pub fn new(
        sizes: &[usize],
        hidden: Activation,
        output: Activation,
        seed: u64,
    ) -> Result<Self, NnError> {
        if sizes.len() < 2 || sizes.contains(&0) {
            return Err(NnError::InvalidArchitecture);
        }
        let mut rng = SplitMix64::seed_from_u64(seed);
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == sizes.len() { output } else { hidden };
                Dense::new(w[0], w[1], act, &mut rng)
            })
            .collect();
        Ok(Self { layers })
    }

    /// Builds an MLP from explicit layers.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidArchitecture`] if empty, or
    /// [`NnError::ShapeMismatch`] if consecutive layer dims disagree.
    pub fn from_layers(layers: Vec<Dense>) -> Result<Self, NnError> {
        if layers.is_empty() {
            return Err(NnError::InvalidArchitecture);
        }
        for pair in layers.windows(2) {
            if pair[0].out_dim() != pair[1].in_dim() {
                return Err(NnError::ShapeMismatch {
                    context: format!(
                        "layer boundary {} -> {}",
                        pair[0].out_dim(),
                        pair[1].in_dim()
                    ),
                });
            }
        }
        Ok(Self { layers })
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimension.
    pub fn output_dim(&self) -> usize {
        self.layers.last().expect("nonempty").out_dim()
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Mutable access for the trainer.
    pub(crate) fn layers_mut(&mut self) -> &mut [Dense] {
        &mut self.layers
    }

    /// Total number of trainable parameters.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Dense::num_params).sum()
    }

    /// Batch forward pass.
    ///
    /// Allocating reference path (one matrix per layer per call), kept as
    /// the A/B baseline for [`Mlp::forward_into`], which is bit-identical.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `x.cols() != input_dim`.
    pub fn forward(&self, x: &Matrix) -> Result<Matrix, NnError> {
        let mut cur = x.clone();
        for layer in &self.layers {
            cur = layer.forward(&cur)?;
        }
        Ok(cur)
    }

    /// Ping-pong core of the scratch-backed forward pass: layer `l` reads
    /// one buffer and writes the other. Returns the buffer holding the
    /// final activations.
    fn forward_pingpong<'s>(
        &self,
        x: &Matrix,
        ping: &'s mut Matrix,
        pong: &'s mut Matrix,
    ) -> Result<&'s Matrix, NnError> {
        for (i, layer) in self.layers.iter().enumerate() {
            if i == 0 {
                layer.forward_into(x, ping)?;
            } else if i % 2 == 1 {
                layer.forward_into(ping, pong)?;
            } else {
                layer.forward_into(pong, ping)?;
            }
        }
        Ok(if self.layers.len() % 2 == 1 {
            ping
        } else {
            pong
        })
    }

    /// Batch forward pass into `scratch`'s reusable buffers; returns a view
    /// of the final activations. Bit-identical to [`Mlp::forward`] (fused
    /// per-layer kernel, same per-element op order) with zero heap
    /// allocation once the scratch has grown to shape.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `x.cols() != input_dim`.
    pub fn forward_into<'s>(
        &self,
        x: &Matrix,
        scratch: &'s mut MlpScratch,
    ) -> Result<&'s Matrix, NnError> {
        self.forward_pingpong(x, &mut scratch.ping, &mut scratch.pong)
    }

    /// Single-sample inference into a caller-owned output slice, staging
    /// the input through `scratch` — the allocation-free hot path behind
    /// the planner's per-step call. Bit-identical to [`Mlp::predict`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `input.len() != input_dim` or
    /// `out.len() != output_dim`.
    pub fn predict_into(
        &self,
        input: &[f64],
        scratch: &mut MlpScratch,
        out: &mut [f64],
    ) -> Result<(), NnError> {
        if out.len() != self.output_dim() {
            return Err(NnError::ShapeMismatch {
                context: format!("predict out {} vs {}", out.len(), self.output_dim()),
            });
        }
        let MlpScratch {
            input: stage,
            ping,
            pong,
        } = scratch;
        stage.reset_zeroed(1, input.len());
        stage.as_mut_slice().copy_from_slice(input);
        let y = self.forward_pingpong(stage, ping, pong)?;
        out.copy_from_slice(y.as_slice());
        Ok(())
    }

    /// Convenience single-sample inference.
    ///
    /// Thin wrapper over [`Mlp::predict_into`] with a throwaway scratch;
    /// hot paths should hold an [`MlpScratch`] and call `predict_into`
    /// directly.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `input.len() != input_dim`.
    pub fn predict(&self, input: &[f64]) -> Result<Vec<f64>, NnError> {
        let mut scratch = MlpScratch::new();
        let mut out = vec![0.0; self.output_dim()];
        self.predict_into(input, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Builds the lane-batched execution plan for this network (transposed
    /// weight copies); pair with [`Mlp::forward_batch_into`].
    pub fn lane_plan(&self) -> LanePlan {
        LanePlan {
            layers: self
                .layers
                .iter()
                .map(|l| LaneLayer {
                    wt: l.weights().transpose(),
                    bias: l.bias().to_vec(),
                    activation: l.activation(),
                })
                .collect(),
            input_dim: self.input_dim(),
            output_dim: self.output_dim(),
        }
    }

    /// Lane-batched forward pass: runs [`LANE_WIDTH`] = 8 samples in
    /// lockstep over an SoA slab, turning each layer into one
    /// `(out×in)·(in×8)` broadcast-FMA matmul plus a vectorised activation
    /// sweep (see [`Matrix::matmul_lanes_into`] and the `simd` module).
    ///
    /// Results are deterministic (independent of host ISA and of which
    /// lanes are live) but **not** bit-identical to the per-sample
    /// reference path: the FMA accumulation contracts rounding steps the
    /// reference performs, and `Tanh` uses the documented few-ulp lane
    /// approximation. Callers that need bit-identity (lanes-of-1) must use
    /// [`Mlp::predict_into`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `plan` was built for a
    /// differently shaped network or `x` is not `input_dim × LANE_WIDTH`.
    pub fn forward_batch_into(
        &self,
        plan: &LanePlan,
        x: &Matrix,
        scratch: &mut BatchScratch,
        out: &mut Matrix,
    ) -> Result<(), NnError> {
        if plan.input_dim() != self.input_dim()
            || plan.output_dim() != self.output_dim()
            || plan.layers.len() != self.layers.len()
        {
            return Err(NnError::ShapeMismatch {
                context: format!(
                    "forward_batch: plan {}->{} ({} layers) vs net {}->{} ({} layers)",
                    plan.input_dim(),
                    plan.output_dim(),
                    plan.layers.len(),
                    self.input_dim(),
                    self.output_dim(),
                    self.layers.len()
                ),
            });
        }
        plan.forward_lanes_into(x, scratch, out)
    }

    /// Forward pass retaining per-layer caches for backprop.
    pub(crate) fn forward_cached(&self, x: &Matrix) -> Result<(Matrix, Vec<DenseCache>), NnError> {
        let mut cur = x.clone();
        let mut caches = Vec::with_capacity(self.layers.len());
        for layer in &self.layers {
            let (out, cache) = layer.forward_cached(&cur)?;
            caches.push(cache);
            cur = out;
        }
        Ok((cur, caches))
    }

    /// Serializes architecture + weights to a plain-text format.
    ///
    /// Format: one header line `mlp <n_layers>`, then per layer a line
    /// `layer <in> <out> <activation>` followed by `in` lines of `out`
    /// weights and one line of `out` biases.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(s, "mlp {}", self.layers.len());
        for l in &self.layers {
            let _ = writeln!(s, "layer {} {} {}", l.in_dim(), l.out_dim(), l.activation());
            for r in 0..l.in_dim() {
                let row: Vec<String> = (0..l.out_dim())
                    .map(|c| format!("{:e}", l.weights().get(r, c)))
                    .collect();
                let _ = writeln!(s, "{}", row.join(" "));
            }
            let bias: Vec<String> = l.bias().iter().map(|b| format!("{b:e}")).collect();
            let _ = writeln!(s, "{}", bias.join(" "));
        }
        s
    }

    /// Parses the format produced by [`Mlp::to_text`].
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ParseWeights`] on any malformed input.
    pub fn from_text(text: &str) -> Result<Self, NnError> {
        let err = |context: &str| NnError::ParseWeights {
            context: context.to_string(),
        };
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let header = lines.next().ok_or_else(|| err("empty input"))?;
        let n_layers: usize = header
            .strip_prefix("mlp ")
            .and_then(|n| n.trim().parse().ok())
            .ok_or_else(|| err("bad header"))?;
        let mut layers = Vec::with_capacity(n_layers);
        for _ in 0..n_layers {
            let decl = lines.next().ok_or_else(|| err("missing layer header"))?;
            let mut parts = decl.split_whitespace();
            if parts.next() != Some("layer") {
                return Err(err("expected 'layer'"));
            }
            let in_dim: usize = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| err("bad in_dim"))?;
            let out_dim: usize = parts
                .next()
                .and_then(|p| p.parse().ok())
                .ok_or_else(|| err("bad out_dim"))?;
            let act = parts
                .next()
                .and_then(Activation::from_name)
                .ok_or_else(|| err("bad activation"))?;
            let mut weights = Matrix::zeros(in_dim, out_dim);
            for r in 0..in_dim {
                let row = lines.next().ok_or_else(|| err("missing weight row"))?;
                let vals: Vec<f64> = row
                    .split_whitespace()
                    .map(|v| v.parse::<f64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| err("bad weight value"))?;
                if vals.len() != out_dim {
                    return Err(err("weight row length"));
                }
                for (c, v) in vals.iter().enumerate() {
                    weights.set(r, c, *v);
                }
            }
            let brow = lines.next().ok_or_else(|| err("missing bias row"))?;
            let bias: Vec<f64> = brow
                .split_whitespace()
                .map(|v| v.parse::<f64>())
                .collect::<Result<_, _>>()
                .map_err(|_| err("bad bias value"))?;
            if bias.len() != out_dim {
                return Err(err("bias row length"));
            }
            layers.push(Dense::from_parts(weights, bias, act).map_err(|e| {
                NnError::ParseWeights {
                    context: e.to_string(),
                }
            })?);
        }
        Self::from_layers(layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn architecture_validation() {
        assert!(Mlp::new(&[5], Activation::Tanh, Activation::Identity, 0).is_err());
        assert!(Mlp::new(&[5, 0, 1], Activation::Tanh, Activation::Identity, 0).is_err());
        assert!(Mlp::new(&[5, 1], Activation::Tanh, Activation::Identity, 0).is_ok());
    }

    #[test]
    fn output_layer_uses_output_activation() {
        let net = Mlp::new(&[2, 4, 1], Activation::Relu, Activation::Identity, 0).unwrap();
        assert_eq!(net.layers()[0].activation(), Activation::Relu);
        assert_eq!(net.layers()[1].activation(), Activation::Identity);
    }

    #[test]
    fn predict_matches_forward() {
        let net = Mlp::new(&[3, 8, 2], Activation::Tanh, Activation::Identity, 9).unwrap();
        let input = [0.1, -0.2, 0.3];
        let y1 = net.predict(&input).unwrap();
        let y2 = net.forward(&Matrix::from_rows(&[&input]).unwrap()).unwrap();
        assert_eq!(y1, y2.as_slice());
    }

    #[test]
    fn same_seed_same_network() {
        let a = Mlp::new(&[4, 8, 1], Activation::Tanh, Activation::Identity, 5).unwrap();
        let b = Mlp::new(&[4, 8, 1], Activation::Tanh, Activation::Identity, 5).unwrap();
        assert_eq!(a, b);
        let c = Mlp::new(&[4, 8, 1], Activation::Tanh, Activation::Identity, 6).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn text_roundtrip_is_exact() {
        let net = Mlp::new(&[5, 16, 8, 1], Activation::Tanh, Activation::Identity, 3).unwrap();
        let text = net.to_text();
        let back = Mlp::from_text(&text).unwrap();
        assert_eq!(net, back);
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(Mlp::from_text("").is_err());
        assert!(Mlp::from_text("mlp x").is_err());
        assert!(Mlp::from_text("mlp 1\nlayer 2 1 bogus\n0 0\n0\n").is_err());
        assert!(Mlp::from_text("mlp 1\nlayer 2 1 tanh\n0\n0\n").is_err());
    }

    #[test]
    fn from_layers_checks_boundaries() {
        let mut rng = SplitMix64::seed_from_u64(0);
        let l1 = Dense::new(2, 3, Activation::Tanh, &mut rng);
        let l2 = Dense::new(4, 1, Activation::Identity, &mut rng);
        assert!(Mlp::from_layers(vec![l1, l2]).is_err());
        assert!(Mlp::from_layers(vec![]).is_err());
    }

    /// `forward_into` must reproduce `forward` to the bit across layer
    /// counts (odd/even exercises both ping-pong endings) and batch sizes.
    #[test]
    fn forward_into_is_bit_identical_to_forward() {
        for sizes in [
            vec![5, 1],
            vec![5, 32, 32, 1],
            vec![3, 7, 11, 2],
            vec![4, 16, 3],
        ] {
            let net = Mlp::new(&sizes, Activation::Tanh, Activation::Identity, 13).unwrap();
            let mut scratch = MlpScratch::for_net(&net);
            for rows in [1usize, 2, 5, 17] {
                let x =
                    Matrix::from_fn(rows, sizes[0], |r, c| ((r * 31 + c * 7) as f64).sin() * 0.7);
                let reference = net.forward(&x).unwrap();
                let fused = net.forward_into(&x, &mut scratch).unwrap();
                assert_eq!((fused.rows(), fused.cols()), (rows, *sizes.last().unwrap()));
                for (a, b) in reference.as_slice().iter().zip(fused.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "sizes {sizes:?} rows {rows}");
                }
            }
        }
    }

    #[test]
    fn predict_into_matches_predict_bitwise() {
        let net = Mlp::new(&[5, 32, 32, 1], Activation::Tanh, Activation::Tanh, 7).unwrap();
        let mut scratch = MlpScratch::for_net(&net);
        let input = [0.3, -0.8, 0.15, 0.9, -0.2];
        let mut out = [0.0];
        net.predict_into(&input, &mut scratch, &mut out).unwrap();
        let reference = net.predict(&input).unwrap();
        assert_eq!(out[0].to_bits(), reference[0].to_bits());
        // Batch reference too: predict must still agree with forward.
        let row = net.forward(&Matrix::from_rows(&[&input]).unwrap()).unwrap();
        assert_eq!(out[0].to_bits(), row.get(0, 0).to_bits());
    }

    #[test]
    fn predict_into_validates_output_arity() {
        let net = Mlp::new(&[2, 4, 2], Activation::Tanh, Activation::Identity, 0).unwrap();
        let mut scratch = MlpScratch::for_net(&net);
        let mut short = [0.0];
        assert!(net
            .predict_into(&[0.1, 0.2], &mut scratch, &mut short)
            .is_err());
        assert!(net.predict(&[0.1]).is_err());
    }

    #[test]
    fn num_params_is_summed() {
        let net = Mlp::new(&[5, 16, 1], Activation::Tanh, Activation::Identity, 0).unwrap();
        assert_eq!(net.num_params(), 5 * 16 + 16 + 16 + 1);
    }

    /// The batched lane pass against per-lane `predict`: every lane's
    /// column must match the per-sample path within the documented
    /// tolerance (FMA contraction + few-ulp lane tanh), across layer
    /// counts and every activation on the hidden layers.
    #[test]
    fn forward_batch_matches_predict_within_tolerance() {
        for (sizes, hidden) in [
            (vec![5, 32, 32, 1], Activation::Tanh),
            (vec![5, 1], Activation::Tanh),
            (vec![3, 7, 11, 2], Activation::Relu),
            (vec![4, 16, 3], Activation::Sigmoid),
        ] {
            let net = Mlp::new(&sizes, hidden, Activation::Tanh, 21).unwrap();
            let plan = net.lane_plan();
            let mut scratch = BatchScratch::for_net(&net);
            let x = Matrix::from_fn(sizes[0], LANE_WIDTH, |r, c| {
                ((r * 13 + c * 29) as f64).sin() * 0.8
            });
            let mut out = Matrix::zeros(0, 0);
            net.forward_batch_into(&plan, &x, &mut scratch, &mut out)
                .unwrap();
            assert_eq!(
                (out.rows(), out.cols()),
                (*sizes.last().unwrap(), LANE_WIDTH)
            );
            for lane in 0..LANE_WIDTH {
                let input: Vec<f64> = (0..sizes[0]).map(|r| x.get(r, lane)).collect();
                let reference = net.predict(&input).unwrap();
                for (o, &want) in reference.iter().enumerate() {
                    let got = out.get(o, lane);
                    assert!(
                        (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                        "sizes {sizes:?} {hidden} lane {lane} out {o}: {got} vs {want}"
                    );
                }
            }
        }
    }

    /// Dead lanes (zero-filled columns) must not disturb live lanes, and
    /// the batched pass must be invariant to what dead lanes contain.
    #[test]
    fn forward_batch_is_lane_independent() {
        let net = Mlp::new(&[5, 32, 32, 1], Activation::Tanh, Activation::Tanh, 7).unwrap();
        let plan = net.lane_plan();
        let mut scratch = BatchScratch::for_net(&net);
        let mut x = Matrix::from_fn(5, LANE_WIDTH, |r, c| ((r + c * 3) as f64).cos() * 0.5);
        let mut a = Matrix::zeros(0, 0);
        net.forward_batch_into(&plan, &x, &mut scratch, &mut a)
            .unwrap();
        // Rewrite lanes 5..8 with junk; lanes 0..5 must be bit-unchanged.
        for r in 0..5 {
            for lane in 5..LANE_WIDTH {
                x.set(r, lane, 1e9);
            }
        }
        let mut b = Matrix::zeros(0, 0);
        net.forward_batch_into(&plan, &x, &mut scratch, &mut b)
            .unwrap();
        for lane in 0..5 {
            assert_eq!(a.get(0, lane).to_bits(), b.get(0, lane).to_bits());
        }
    }

    #[test]
    fn forward_batch_validates_plan_and_input() {
        let net = Mlp::new(&[5, 8, 1], Activation::Tanh, Activation::Tanh, 1).unwrap();
        let other = Mlp::new(&[4, 8, 1], Activation::Tanh, Activation::Tanh, 1).unwrap();
        let plan = net.lane_plan();
        let mut scratch = BatchScratch::for_net(&net);
        let mut out = Matrix::zeros(0, 0);
        // Mismatched plan.
        assert!(other
            .forward_batch_into(&plan, &Matrix::zeros(4, LANE_WIDTH), &mut scratch, &mut out)
            .is_err());
        // Wrong input shape.
        assert!(net
            .forward_batch_into(&plan, &Matrix::zeros(5, 4), &mut scratch, &mut out)
            .is_err());
        assert!(net
            .forward_batch_into(&plan, &Matrix::zeros(4, LANE_WIDTH), &mut scratch, &mut out)
            .is_err());
    }
}
