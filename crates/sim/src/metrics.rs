use crate::EpisodeResult;

/// Aggregate statistics over a batch of episodes — the columns of the
/// paper's Tables I and II.
///
/// Reaching time follows the paper's convention: *"only reaching time of
/// safe cases is counted"* (the `*` footnote of Table II), and episodes that
/// time out contribute to neither the reaching time nor the collision count.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchSummary {
    /// Number of episodes that completed and contribute to the statistics.
    pub episodes: usize,
    /// Episodes the batch was asked to run. Equal to `episodes` for a clean
    /// run; under supervision ([`crate::run_batch_supervised`]) it also
    /// covers the failed / panicked / skipped episodes below.
    pub requested: usize,
    /// Episodes that ended in a typed simulation error.
    pub failed: usize,
    /// Episodes whose planner panicked (isolated, not poisoning the batch).
    pub panicked: usize,
    /// Episodes skipped without running (quarantined seed, or interrupted
    /// by cancellation / deadline expiry).
    pub skipped: usize,
    /// Mean reaching time over safe episodes that reached the target (s).
    pub reaching_time: f64,
    /// Fraction of episodes without a safety violation.
    pub safe_rate: f64,
    /// Mean `η` over all episodes.
    pub eta_mean: f64,
    /// Mean emergency frequency (fraction of steps decided by `κ_e`).
    pub emergency_frequency: f64,
    /// Per-episode `η` values, aligned with the episode seed order, for
    /// paired comparisons ([`winning_percentage`]).
    pub etas: Vec<f64>,
    /// Reaching times of the episodes that reached the target (s).
    pub reaching_times: Vec<f64>,
    /// Wall-clock duration of the batch run (s); `0.0` when the summary was
    /// built from results alone and never timed ([`BatchSummary::with_timing`]).
    pub wall_time_secs: f64,
    /// Throughput of the batch run (episodes/s); `0.0` when untimed.
    pub episodes_per_sec: f64,
    /// Episodes answered from the content-addressed result cache without
    /// touching a worker. `0` when the batch ran uncached.
    pub cache_hits: usize,
    /// Episodes that missed the cache and were simulated. `0` when uncached
    /// (an uncached run is *not* a run of misses — no lookup happened).
    pub cache_misses: usize,
    /// Entries the cache evicted while this batch inserted its results.
    pub cache_evictions: usize,
    /// Of `cache_hits`, how many were served by entries reloaded from the
    /// persistent tier at daemon startup (warm-restart hits). `0` for
    /// memory-only caches and for peers that predate the persistent tier.
    pub cache_persisted_hits: usize,
    /// Segments the persistent tier quarantined to `.bad` at startup (a
    /// daemon-lifetime count stamped onto every summary it serves). `0`
    /// when clean, memory-only, or decoded from an older peer.
    pub cache_quarantined: usize,
    /// Lane count the batch ran with (`1` for the per-episode path).
    /// Operational metadata like the timing fields and cache counters:
    /// excluded from [`BatchSummary::stats_eq`], and decoded as `1` from
    /// peers that predate lane batching.
    pub lanes: usize,
}

impl BatchSummary {
    /// Summarises a slice of episode results.
    ///
    /// # Panics
    ///
    /// Panics if `results` is empty.
    pub fn from_results(results: &[EpisodeResult]) -> Self {
        assert!(!results.is_empty(), "cannot summarise an empty batch");
        summarise(results.iter())
    }

    /// Attaches the measured wall-clock duration of the run, deriving the
    /// episodes/s throughput.
    ///
    /// Both timing fields are `0.0` — meaning "untimed or unmeasurably
    /// fast", never `inf`/`NaN` — when `wall` is zero or so short that its
    /// seconds representation is subnormal (a denormal divisor would
    /// otherwise overflow the throughput to `inf`).
    #[must_use]
    pub fn with_timing(mut self, wall: std::time::Duration) -> Self {
        let secs = wall.as_secs_f64();
        if !secs.is_normal() || secs <= 0.0 {
            self.wall_time_secs = 0.0;
            self.episodes_per_sec = 0.0;
            return self;
        }
        self.wall_time_secs = secs;
        self.episodes_per_sec = self.episodes as f64 / secs;
        self
    }

    /// Whether two summaries agree on every *deterministic* statistic —
    /// everything except the timing fields and the cache counters, which
    /// are operational metadata that varies run to run (a warm-cache replay
    /// of a batch must compare equal to its cold run). `NaN` compares equal
    /// to `NaN` here (an all-timeout batch has a `NaN` reaching time on
    /// both sides).
    pub fn stats_eq(&self, other: &Self) -> bool {
        fn feq(a: f64, b: f64) -> bool {
            a == b || (a.is_nan() && b.is_nan())
        }
        self.episodes == other.episodes
            && self.requested == other.requested
            && self.failed == other.failed
            && self.panicked == other.panicked
            && self.skipped == other.skipped
            && feq(self.reaching_time, other.reaching_time)
            && feq(self.safe_rate, other.safe_rate)
            && feq(self.eta_mean, other.eta_mean)
            && feq(self.emergency_frequency, other.emergency_frequency)
            && self.etas.len() == other.etas.len()
            && self.etas.iter().zip(&other.etas).all(|(a, b)| feq(*a, *b))
            && self.reaching_times.len() == other.reaching_times.len()
            && self
                .reaching_times
                .iter()
                .zip(&other.reaching_times)
                .all(|(a, b)| feq(*a, *b))
    }

    /// 95% normal-approximation confidence half-width of the mean `η`.
    pub fn eta_ci95(&self) -> f64 {
        ci95_half_width(&self.etas)
    }

    /// 95% confidence half-width of the mean reaching time (over episodes
    /// that reached; `NaN` when fewer than two did).
    pub fn reaching_time_ci95(&self) -> f64 {
        ci95_half_width(&self.reaching_times)
    }
}

/// Empty-safe summary over any subset of a batch's episodes. With zero
/// episodes the means are `NaN` — never a panic — so supervised partial
/// results can always carry a summary. The fault counts (`requested`,
/// `failed`, `panicked`, `skipped`) are initialised to the clean-run values
/// (`requested == episodes`, zero faults); supervised callers overwrite
/// them with what they observed.
pub(crate) fn summarise<'a, I>(results: I) -> BatchSummary
where
    I: Iterator<Item = &'a EpisodeResult>,
{
    let mut episodes = 0usize;
    let mut reach_sum = 0.0;
    let mut reach_n = 0usize;
    let mut safe_n = 0usize;
    let mut eta_sum = 0.0;
    let mut emer_sum = 0.0;
    let mut etas = Vec::new();
    let mut reaching_times = Vec::new();
    for r in results {
        episodes += 1;
        if r.outcome.is_safe() {
            safe_n += 1;
        }
        if let Some(t) = r.outcome.reaching_time() {
            reach_sum += t;
            reach_n += 1;
            reaching_times.push(t);
        }
        eta_sum += r.eta;
        emer_sum += r.emergency_frequency();
        etas.push(r.eta);
    }
    BatchSummary {
        episodes,
        requested: episodes,
        failed: 0,
        panicked: 0,
        skipped: 0,
        reaching_time: if reach_n > 0 {
            reach_sum / reach_n as f64
        } else {
            f64::NAN
        },
        safe_rate: safe_n as f64 / episodes as f64,
        eta_mean: eta_sum / episodes as f64,
        emergency_frequency: emer_sum / episodes as f64,
        etas,
        reaching_times,
        wall_time_secs: 0.0,
        episodes_per_sec: 0.0,
        cache_hits: 0,
        cache_misses: 0,
        cache_evictions: 0,
        cache_persisted_hits: 0,
        cache_quarantined: 0,
        lanes: 1,
    }
}

/// 95% normal-approximation confidence half-width of a sample mean
/// (`1.96·s/√n`); `NaN` for fewer than two samples.
pub fn ci95_half_width(samples: &[f64]) -> f64 {
    let n = samples.len();
    if n < 2 {
        return f64::NAN;
    }
    let mean = samples.iter().sum::<f64>() / n as f64;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
    1.96 * (var / n as f64).sqrt()
}

/// Winning percentage (paper Tables I/II): the fraction of paired episodes
/// in which `ours` achieves a strictly higher `η` than `baseline`.
///
/// Both slices must be aligned on the same episode seeds.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn winning_percentage(ours: &[f64], baseline: &[f64]) -> f64 {
    assert_eq!(ours.len(), baseline.len(), "unpaired η slices");
    assert!(!ours.is_empty(), "empty η slices");
    let wins = ours.iter().zip(baseline).filter(|(a, b)| *a > *b).count();
    wins as f64 / ours.len() as f64
}

/// Root-mean-square error between two aligned signals (used by the Fig. 6a
/// filter-quality experiment).
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn rmse(estimate: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(estimate.len(), truth.len(), "unaligned signals");
    assert!(!estimate.is_empty(), "empty signals");
    let sq_sum: f64 = estimate
        .iter()
        .zip(truth)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    (sq_sum / estimate.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use safe_shield::Outcome;

    fn result(outcome: Outcome, emergency: u64, total: u64) -> EpisodeResult {
        EpisodeResult {
            eta: outcome.eta(),
            outcome,
            emergency_steps: emergency,
            total_steps: total,
            collided_pair: None,
            traces: None,
        }
    }

    #[test]
    fn summary_counts_only_safe_reaches() {
        let results = vec![
            result(Outcome::Reached { time: 8.0 }, 0, 100),
            result(Outcome::Collision { time: 3.0 }, 0, 60),
            result(Outcome::Timeout, 50, 100),
        ];
        let s = BatchSummary::from_results(&results);
        assert_eq!(s.episodes, 3);
        assert!((s.reaching_time - 8.0).abs() < 1e-12);
        assert!((s.safe_rate - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.eta_mean - (0.125 - 1.0 + 0.0) / 3.0).abs() < 1e-12);
        assert!((s.emergency_frequency - 0.5 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn timing_attaches_and_stats_eq_ignores_it() {
        let results = vec![result(Outcome::Reached { time: 8.0 }, 0, 100)];
        let plain = BatchSummary::from_results(&results);
        let timed = plain
            .clone()
            .with_timing(std::time::Duration::from_millis(250));
        assert_eq!(plain.wall_time_secs, 0.0);
        assert!((timed.wall_time_secs - 0.25).abs() < 1e-12);
        assert!((timed.episodes_per_sec - 4.0).abs() < 1e-9);
        assert!(plain.stats_eq(&timed));
        assert_ne!(plain, timed);
    }

    #[test]
    fn stats_eq_ignores_cache_counters() {
        let results = vec![result(Outcome::Reached { time: 8.0 }, 0, 100)];
        let cold = BatchSummary::from_results(&results);
        let mut warm = cold.clone();
        warm.cache_hits = 1;
        warm.cache_misses = 0;
        warm.cache_evictions = 3;
        warm.cache_persisted_hits = 1;
        warm.cache_quarantined = 2;
        warm.lanes = 8;
        assert!(
            cold.stats_eq(&warm),
            "cache counters and lanes are operational"
        );
        assert_ne!(cold, warm);
    }

    #[test]
    fn stats_eq_treats_nan_reaching_time_as_equal() {
        let a = BatchSummary::from_results(&[result(Outcome::Timeout, 0, 10)]);
        let b = BatchSummary::from_results(&[result(Outcome::Timeout, 0, 10)]);
        assert!(a.stats_eq(&b));
        let c = BatchSummary::from_results(&[result(Outcome::Reached { time: 5.0 }, 0, 10)]);
        assert!(!a.stats_eq(&c));
    }

    #[test]
    fn reaching_time_nan_when_nothing_reached() {
        let s = BatchSummary::from_results(&[result(Outcome::Timeout, 0, 10)]);
        assert!(s.reaching_time.is_nan());
    }

    #[test]
    fn confidence_intervals_shrink_with_more_data() {
        let few: Vec<EpisodeResult> = (0..4)
            .map(|i| {
                result(
                    Outcome::Reached {
                        time: 6.0 + 0.1 * i as f64,
                    },
                    0,
                    100,
                )
            })
            .collect();
        let many: Vec<EpisodeResult> = (0..64)
            .map(|i| {
                result(
                    Outcome::Reached {
                        time: 6.0 + 0.1 * (i % 4) as f64,
                    },
                    0,
                    100,
                )
            })
            .collect();
        let s_few = BatchSummary::from_results(&few);
        let s_many = BatchSummary::from_results(&many);
        assert!(s_many.reaching_time_ci95() < s_few.reaching_time_ci95());
        assert!(s_many.eta_ci95() < s_few.eta_ci95());
    }

    #[test]
    fn ci_is_nan_for_tiny_samples() {
        let s = BatchSummary::from_results(&[result(Outcome::Timeout, 0, 10)]);
        assert!(s.reaching_time_ci95().is_nan());
        assert!(ci95_half_width(&[1.0]).is_nan());
        assert_eq!(ci95_half_width(&[1.0, 1.0]), 0.0);
    }

    #[test]
    fn winning_percentage_counts_strict_wins() {
        let ours = [0.2, 0.1, 0.3, 0.1];
        let base = [0.1, 0.1, 0.1, 0.2];
        assert!((winning_percentage(&ours, &base) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rmse_known_value() {
        assert!((rmse(&[1.0, 2.0], &[0.0, 0.0]) - (2.5f64).sqrt()).abs() < 1e-12);
        assert_eq!(rmse(&[3.0], &[3.0]), 0.0);
    }

    #[test]
    #[should_panic]
    fn rmse_rejects_unaligned() {
        let _ = rmse(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn zero_or_denormal_wall_time_yields_zero_throughput() {
        let base = BatchSummary {
            episodes: 4,
            requested: 4,
            failed: 0,
            panicked: 0,
            skipped: 0,
            reaching_time: f64::NAN,
            safe_rate: 1.0,
            eta_mean: 0.0,
            emergency_frequency: 0.0,
            etas: vec![0.0; 4],
            reaching_times: Vec::new(),
            wall_time_secs: 0.0,
            episodes_per_sec: 0.0,
            cache_hits: 0,
            cache_misses: 0,
            cache_evictions: 0,
            cache_persisted_hits: 0,
            cache_quarantined: 0,
            lanes: 1,
        };
        let zero = base.clone().with_timing(std::time::Duration::ZERO);
        assert_eq!(zero.wall_time_secs, 0.0);
        assert_eq!(zero.episodes_per_sec, 0.0);
        // 1 ns is representable but denormal arithmetic never appears: the
        // seconds value is normal, so throughput is finite and positive.
        let tiny = base.clone().with_timing(std::time::Duration::from_nanos(1));
        assert!(tiny.episodes_per_sec.is_finite());
        assert!(tiny.episodes_per_sec > 0.0);
    }
}
