//! Discrete-time connected-vehicle simulator and experiment engine.
//!
//! Reproduces the experimental setup of paper Section V: the ego vehicle
//! `C_0` performs an unprotected left turn across a randomly driven oncoming
//! vehicle `C_1`, receiving V2V messages every `Δt_m` (subject to delay and
//! drops) and sensor measurements every `Δt_s` (subject to bounded noise).
//!
//! * [`EpisodeConfig`] — one episode's physical/communication parameters
//!   (defaults follow the paper: `p_0(0) = −30 m`, zone `[5, 15]`,
//!   `p_1(0) ∈ {50.5 + 0.5j}`, `Δt_c = 0.05 s`, `Δt_d = 0.25 s`).
//! * [`StackSpec`] — which planner runs: a pure NN planner (naive
//!   estimation, no shield), the basic compound planner `κ_cb`, or the
//!   ultimate compound planner `κ_cu` (information filter + aggressive
//!   unsafe set).
//! * [`run_episode`] — simulates one episode and scores it with the paper's
//!   `η` ([`safe_shield::Outcome`]).
//! * [`run_batch`] — multi-threaded Monte-Carlo over seeds and initial
//!   positions, summarised as the columns of the paper's Tables I/II
//!   ([`BatchSummary`]): reaching time, safe rate, mean `η`, emergency
//!   frequency — plus paired per-episode `η`s for winning percentages.
//!   Episodes are distributed over workers by a dynamic claim-by-index
//!   [`scheduler`], and every worker reuses an [`EpisodeWorkspace`] so the
//!   per-step loop allocates nothing in the steady state; results stay
//!   bit-identical to a serial run.
//! * [`run_batch_supervised`] — the fault-isolated batch path: every
//!   episode is wrapped in `catch_unwind` and mapped to a typed
//!   [`EpisodeOutcome`] (completed / failed / panicked / skipped), with
//!   optional seed [`Quarantine`] and step-granular interruption; episodes
//!   that complete are bit-identical to a clean run.
//! * [`run_batch_lanes`] — the lane-batched execution mode
//!   ([`BatchMode::Lanes`]): each worker steps K ≤ 8 episodes in lockstep
//!   and answers their deferred NN evaluations with one batched forward
//!   pass per round (same fault semantics as the supervised path; see the
//!   [`lanes`] module for the determinism/tolerance contract).
//! * [`training`] — closed-loop teacher rollouts + behaviour cloning to
//!   produce the conservative/aggressive NN planners (`κ_n,cons`,
//!   `κ_n,aggr`).
//!
//! # Example
//!
//! ```
//! use cv_sim::{run_episode, EpisodeConfig, StackSpec, WindowKind};
//!
//! // A single conservative-teacher episode under perfect communication.
//! let cfg = EpisodeConfig::paper_default(42);
//! let result = run_episode(&cfg, &StackSpec::pure_teacher_conservative(&cfg)?, false)?;
//! assert!(result.outcome.is_safe());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod batch;
pub mod cache;
mod cadence;
mod config;
mod driver;
mod episode;
pub mod events;
pub mod lanes;
mod metrics;
pub mod scheduler;
mod stack;
pub mod supervise;
pub mod training;
pub mod workspace;

pub use batch::{run_batch, run_batch_static, run_batch_summary, BatchConfig};
pub use cache::{
    episode_key, episode_weight, stack_digest, store_salt, EpisodeCache, DEFAULT_CACHE_BYTES,
};
pub use config::{EpisodeConfig, ExtraVehicle, PlatoonFollower, PlatoonSpec};
pub use cv_cache::{CacheKey, CacheStats, Hashable, KeyError, KeyHasher, RecoveryReport};
pub use driver::{Driver, DriverModel, LeadInfo};
pub use episode::{
    run_episode, DecisionTrace, EpisodeResult, EpisodeTraces, SimError, WindowTrace,
};
pub use events::run_batch_event_driven;
pub use lanes::{lane_tolerance_check, run_batch_lanes, BatchMode};
pub use metrics::{rmse, winning_percentage, BatchSummary};
pub use scheduler::{for_each_dynamic, WorkQueue};
pub use stack::{StackSpec, WindowKind};
pub use supervise::{
    run_batch_supervised, supervised_episode, supervised_episode_with, BatchReport, EngineKind,
    EpisodeOutcome, Quarantine, SkipReason,
};
pub use workspace::EpisodeWorkspace;
