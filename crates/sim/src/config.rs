use cv_comm::CommSetting;
use cv_dynamics::VehicleState;
use cv_sensing::SensorNoise;
use left_turn::{LeftTurnScenario, ScenarioError};

use crate::episode::SimError;
use crate::DriverModel;

/// An additional conflicting vehicle beyond the paper's single `C_1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExtraVehicle {
    /// Initial position on the shared ego axis.
    pub start_shared: f64,
    /// Initial speed (m/s, forward frame).
    pub init_speed: f64,
    /// Driving behaviour.
    pub driver: DriverModel,
    /// Per-pair V2V channel override: `None` inherits the episode-level
    /// [`EpisodeConfig::comm`] setting (the pre-platoon behaviour, and the
    /// wire default), `Some` gives this vehicle's channel its own
    /// independent delay/drop.
    pub comm: Option<CommSetting>,
}

impl ExtraVehicle {
    /// An extra vehicle inheriting the episode-level channel setting.
    pub fn new(start_shared: f64, init_speed: f64, driver: DriverModel) -> Self {
        Self {
            start_shared,
            init_speed,
            driver,
            comm: None,
        }
    }

    /// Overrides this vehicle's V2V channel setting.
    pub fn with_comm(mut self, comm: CommSetting) -> Self {
        self.comm = Some(comm);
        self
    }
}

/// Full configuration of one simulated episode.
///
/// Defaults ([`EpisodeConfig::paper_default`]) follow paper Section V; the
/// quantities the paper does not specify (speed/acceleration limits, initial
/// speeds, horizon) are fixed in `DESIGN.md` §6.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeConfig {
    /// `C_1`'s initial position on the shared ego axis (`p_1(0)`).
    pub other_start_shared: f64,
    /// Ego initial state (paper: `p_0(0) = −30 m`).
    pub ego_init: VehicleState,
    /// `C_1` initial speed (m/s, forward frame).
    pub other_init_speed: f64,
    /// Control period `Δt_c` (s).
    pub dt_c: f64,
    /// Message transmission period `Δt_m` (s).
    pub dt_m: f64,
    /// Sensing period `Δt_s` (s).
    pub dt_s: f64,
    /// Episode horizon (s); `η = 0` on timeout.
    pub horizon: f64,
    /// Communication setting.
    pub comm: CommSetting,
    /// Sensor noise bounds.
    pub noise: SensorNoise,
    /// Master seed; sub-streams (C1 driving, channel drops, sensor noise)
    /// are derived deterministically so different planner stacks replay the
    /// *same* episode.
    pub seed: u64,
    /// Per-measurement sensor dropout probability (occlusions / detector
    /// misses). `0` reproduces the paper's always-detecting sensor and
    /// keeps the historical noise stream bit-identical; positive values use
    /// an extra RNG draw per sensing period.
    pub sensor_dropout: f64,
    /// Driving behaviour of the primary oncoming vehicle `C_1`.
    pub driver: DriverModel,
    /// Additional oncoming vehicles (the paper's system model allows
    /// `n − 1`; its evaluation uses one). Empty by default.
    pub extra_others: Vec<ExtraVehicle>,
}

impl EpisodeConfig {
    /// The paper's default episode at `p_1(0) = 52 m` under perfect
    /// communication, with `Δt_m = Δt_s = 0.1 s` and `δ = 1`.
    pub fn paper_default(seed: u64) -> Self {
        Self {
            other_start_shared: 52.0,
            ego_init: VehicleState::new(-30.0, 8.0, 0.0),
            other_init_speed: 10.0,
            dt_c: 0.05,
            dt_m: 0.1,
            dt_s: 0.1,
            horizon: 30.0,
            comm: CommSetting::NoDisturbance,
            noise: SensorNoise::uniform(1.0),
            seed,
            sensor_dropout: 0.0,
            driver: DriverModel::UniformRandom,
            extra_others: Vec::new(),
        }
    }

    /// Builds the scenario geometry for this episode.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if the configuration is geometrically
    /// invalid (e.g. `C_1` starting inside the zone).
    pub fn scenario(&self) -> Result<LeftTurnScenario, ScenarioError> {
        let mut scenario = LeftTurnScenario::paper_default(self.other_start_shared)?;
        if (scenario.dt_c() - self.dt_c).abs() > 1e-12 {
            scenario = LeftTurnScenario::new(
                scenario.geometry(),
                scenario.ego_limits(),
                scenario.other_limits(),
                self.other_start_shared,
                self.dt_c,
            )?;
        }
        Ok(scenario)
    }

    /// `C_1`'s initial state in its forward frame.
    pub fn other_init(&self) -> VehicleState {
        VehicleState::new(0.0, self.other_init_speed, 0.0)
    }

    /// All conflicting vehicles: the primary `C_1` followed by
    /// [`EpisodeConfig::extra_others`], as
    /// `(start_shared, init_speed, driver)` tuples.
    pub fn vehicles(&self) -> Vec<(f64, f64, DriverModel)> {
        let mut v = vec![(self.other_start_shared, self.other_init_speed, self.driver)];
        v.extend(
            self.extra_others
                .iter()
                .map(|e| (e.start_shared, e.init_speed, e.driver)),
        );
        v
    }

    /// One scenario per conflicting vehicle (shared geometry, per-vehicle
    /// frame mapping).
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if any vehicle starts inside the zone.
    pub fn scenarios(&self) -> Result<Vec<LeftTurnScenario>, ScenarioError> {
        let primary = self.scenario()?;
        let mut out = vec![primary];
        for extra in &self.extra_others {
            out.push(LeftTurnScenario::new(
                primary.geometry(),
                primary.ego_limits(),
                primary.other_limits(),
                extra.start_shared,
                self.dt_c,
            )?);
        }
        Ok(out)
    }

    /// The effective V2V channel setting of conflicting vehicle `i`: the
    /// per-vehicle override when one is set, the episode-level
    /// [`EpisodeConfig::comm`] otherwise. Vehicle `0` (the primary `C_1`)
    /// always uses the episode-level setting.
    pub fn effective_comm(&self, i: usize) -> CommSetting {
        match i.checked_sub(1).and_then(|j| self.extra_others.get(j)) {
            Some(extra) => extra.comm.unwrap_or(self.comm),
            None => self.comm,
        }
    }

    /// Derived sub-seed for vehicle `i`'s random driving.
    pub fn seed_driving_for(&self, i: usize) -> u64 {
        split_seed(self.seed, 1 + 8 * i as u64)
    }

    /// Derived sub-seed for vehicle `i`'s communication channel.
    pub fn seed_channel_for(&self, i: usize) -> u64 {
        split_seed(self.seed, 2 + 8 * i as u64)
    }

    /// Derived sub-seed for the sensor observing vehicle `i`.
    pub fn seed_sensor_for(&self, i: usize) -> u64 {
        split_seed(self.seed, 3 + 8 * i as u64)
    }

    /// Derived sub-seed for `C_1`'s random acceleration sequence.
    pub fn seed_driving(&self) -> u64 {
        split_seed(self.seed, 1)
    }

    /// Derived sub-seed for the communication channel.
    pub fn seed_channel(&self) -> u64 {
        split_seed(self.seed, 2)
    }

    /// Derived sub-seed for the sensor noise.
    pub fn seed_sensor(&self) -> u64 {
        split_seed(self.seed, 3)
    }

    /// The 20 initial positions of the paper's sweep,
    /// `p_1(0) ∈ {50.5 + 0.5j | j = 0..19}`.
    pub fn paper_start_grid() -> Vec<f64> {
        (0..20).map(|j| 50.5 + 0.5 * j as f64).collect()
    }
}

/// One trailing vehicle of a [`PlatoonSpec`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlatoonFollower {
    /// Initial headway to its predecessor (m, shared axis) — also the
    /// headway its gap-tracking policy holds, so the platoon starts in
    /// equilibrium.
    pub gap: f64,
    /// Initial speed (m/s, forward frame).
    pub init_speed: f64,
    /// Gap-tracking feedback gain (1/s²); see
    /// [`DriverModel::GapTracking`].
    pub policy_gain: f64,
    /// Per-pair V2V channel override (`None` inherits
    /// [`PlatoonSpec::comm`]).
    pub comm: Option<CommSetting>,
}

impl PlatoonFollower {
    /// The default follower: 9 m headway at the leader's 10 m/s, gain 0.6,
    /// inheriting the platoon-level channel.
    pub fn paper_default() -> Self {
        Self {
            gap: 9.0,
            init_speed: 10.0,
            policy_gain: 0.6,
            comm: None,
        }
    }
}

/// An N-vehicle platoon episode: the NN-controlled ego `C_0` turning across
/// an oncoming platoon — a free-driven leader (the paper's `C_1`) trailed by
/// gap-tracking followers, each vehicle with its own V2V channel.
///
/// [`PlatoonSpec::episode`] lowers the spec onto [`EpisodeConfig`]: the
/// leader becomes the primary conflicting vehicle and each follower an
/// [`ExtraVehicle`] whose start position accumulates the headways and whose
/// driver is [`DriverModel::GapTracking`]. An `n = 2` platoon (ego +
/// leader, no followers) lowers to exactly the single-conflicting-vehicle
/// configuration — the differential oracle the platoon test-suite pins.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatoonSpec {
    /// Master episode seed.
    pub seed: u64,
    /// Leader initial position on the shared ego axis (`p_1(0)`).
    pub leader_start_shared: f64,
    /// Leader initial speed (m/s, forward frame).
    pub leader_init_speed: f64,
    /// Leader driving behaviour (the paper default draws uniform random
    /// accelerations).
    pub leader_driver: DriverModel,
    /// Channel setting for every pair without a per-vehicle override.
    pub comm: CommSetting,
    /// Trailing vehicles, ordered front to back.
    pub followers: Vec<PlatoonFollower>,
}

impl PlatoonSpec {
    /// The paper-default platoon of `n` vehicles total (the ego plus
    /// `n − 1` oncoming): leader at `p_1(0) = 52 m`, default followers.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidBatch`] for `n < 2`: a platoon needs the
    /// ego and at least one conflicting vehicle
    /// (`MultiCompoundPlanner` is undefined over zero pairs).
    pub fn paper_default(n: usize, seed: u64) -> Result<Self, SimError> {
        if n < 2 {
            return Err(SimError::InvalidBatch {
                reason: format!("platoon needs at least 2 vehicles (ego + 1 conflicting), got {n}"),
            });
        }
        Ok(Self {
            seed,
            leader_start_shared: 52.0,
            leader_init_speed: 10.0,
            leader_driver: DriverModel::UniformRandom,
            comm: CommSetting::NoDisturbance,
            followers: vec![PlatoonFollower::paper_default(); n - 2],
        })
    }

    /// Total vehicle count, ego included.
    pub fn n(&self) -> usize {
        2 + self.followers.len()
    }

    /// Lowers the platoon onto an [`EpisodeConfig`].
    pub fn episode(&self) -> EpisodeConfig {
        let mut cfg = EpisodeConfig::paper_default(self.seed);
        cfg.other_start_shared = self.leader_start_shared;
        cfg.other_init_speed = self.leader_init_speed;
        cfg.driver = self.leader_driver;
        cfg.comm = self.comm;
        let mut start = self.leader_start_shared;
        for f in &self.followers {
            start += f.gap;
            cfg.extra_others.push(ExtraVehicle {
                start_shared: start,
                init_speed: f.init_speed,
                driver: DriverModel::GapTracking {
                    target_gap: f.gap,
                    gain: f.policy_gain,
                },
                comm: f.comm,
            });
        }
        cfg
    }
}

/// SplitMix64-style seed derivation: decorrelates the per-purpose RNG
/// streams from the master seed.
fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed
        .wrapping_add(stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let c = EpisodeConfig::paper_default(0);
        assert_eq!(c.ego_init.position, -30.0);
        assert_eq!(c.dt_c, 0.05);
        assert_eq!(c.dt_m, c.dt_s); // paper: Δt_m = Δt_s
        let s = c.scenario().unwrap();
        assert_eq!(s.geometry().p_f, 5.0);
        assert_eq!(s.geometry().p_b, 15.0);
    }

    #[test]
    fn start_grid_matches_paper() {
        let grid = EpisodeConfig::paper_start_grid();
        assert_eq!(grid.len(), 20);
        assert_eq!(grid[0], 50.5);
        assert_eq!(grid[19], 60.0);
    }

    #[test]
    fn sub_seeds_are_distinct_and_deterministic() {
        let c = EpisodeConfig::paper_default(7);
        assert_ne!(c.seed_driving(), c.seed_channel());
        assert_ne!(c.seed_channel(), c.seed_sensor());
        assert_eq!(
            c.seed_driving(),
            EpisodeConfig::paper_default(7).seed_driving()
        );
        assert_ne!(
            c.seed_driving(),
            EpisodeConfig::paper_default(8).seed_driving()
        );
    }

    #[test]
    fn scenario_respects_custom_dt_c() {
        let mut c = EpisodeConfig::paper_default(0);
        c.dt_c = 0.02;
        assert_eq!(c.scenario().unwrap().dt_c(), 0.02);
    }

    #[test]
    fn effective_comm_inherits_unless_overridden() {
        let mut c = EpisodeConfig::paper_default(0);
        c.comm = CommSetting::delayed_with_drop(0.25);
        c.extra_others
            .push(ExtraVehicle::new(61.0, 10.0, DriverModel::ConstantSpeed));
        c.extra_others.push(
            ExtraVehicle::new(70.0, 10.0, DriverModel::ConstantSpeed).with_comm(CommSetting::Lost),
        );
        assert_eq!(c.effective_comm(0), c.comm);
        assert_eq!(c.effective_comm(1), c.comm);
        assert_eq!(c.effective_comm(2), CommSetting::Lost);
        // Out of range falls back to the episode-level setting.
        assert_eq!(c.effective_comm(3), c.comm);
    }

    #[test]
    fn platoon_lowering_accumulates_gaps_and_policies() {
        let mut spec = PlatoonSpec::paper_default(4, 11).unwrap();
        spec.comm = CommSetting::delayed_with_drop(0.1);
        spec.followers[1].gap = 12.0;
        spec.followers[1].policy_gain = 0.4;
        spec.followers[1].comm = Some(CommSetting::Lost);
        assert_eq!(spec.n(), 4);
        let cfg = spec.episode();
        assert_eq!(cfg.other_start_shared, 52.0);
        assert_eq!(cfg.extra_others.len(), 2);
        assert_eq!(cfg.extra_others[0].start_shared, 61.0);
        assert_eq!(cfg.extra_others[1].start_shared, 73.0);
        assert_eq!(
            cfg.extra_others[1].driver,
            DriverModel::GapTracking {
                target_gap: 12.0,
                gain: 0.4
            }
        );
        assert_eq!(cfg.effective_comm(1), CommSetting::delayed_with_drop(0.1));
        assert_eq!(cfg.effective_comm(2), CommSetting::Lost);
        // Every vehicle maps onto a scenario sharing the zone geometry.
        assert_eq!(cfg.scenarios().unwrap().len(), 3);
    }

    #[test]
    fn degenerate_platoon_rejects_with_the_typed_error() {
        for n in [0usize, 1] {
            match PlatoonSpec::paper_default(n, 0) {
                Err(SimError::InvalidBatch { reason }) => {
                    assert!(reason.contains("at least 2"), "reason: {reason}")
                }
                other => panic!("n={n} must reject, got {other:?}"),
            }
        }
    }

    #[test]
    fn two_vehicle_platoon_lowers_to_the_single_vehicle_config() {
        let spec = PlatoonSpec::paper_default(2, 5).unwrap();
        assert_eq!(spec.episode(), EpisodeConfig::paper_default(5));
    }
}
