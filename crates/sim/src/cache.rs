//! Content-addressed cache keys for episodes (DESIGN.md §14).
//!
//! An episode is a pure function of `(EpisodeConfig, StackSpec, code
//! version, build features)` — seeded RNG streams make the simulator
//! deterministic, and the bit-identity suites pin that down across every
//! batch path. This module derives the stable 128-bit [`CacheKey`] that
//! names one such computation:
//!
//! * [`EpisodeConfig`] implements [`Hashable`] field for field — every f64
//!   by its bit pattern (so `-0.0 ≠ 0.0`), every enum with a discriminant
//!   byte, every collection length-prefixed. A NaN anywhere is a typed
//!   [`KeyError`], never a silent key.
//! * [`stack_digest`] folds the planner stack — including full NN weight
//!   matrices — plus the *salt*: the crate version and the set of active
//!   feature flags that can change simulation behaviour (`fault-injection`
//!   compiles a different [`StackSpec`] shape, so its artifacts must never
//!   collide with default-build ones).
//! * [`episode_key`] combines the two; [`BatchConfig::episode`] + this is
//!   what the server's shard path looks up before touching a worker.
//!
//! The digest is computed once per batch (NN weights are the expensive
//! part) and mixed into each per-episode key.

use cv_cache::{CacheKey, Hashable, KeyError, KeyHasher, PersistValue, PersistentCache};
use cv_comm::CommSetting;
use cv_dynamics::VehicleState;
use cv_estimation::FilterMode;
use cv_planner::{NnPlanner, TeacherPolicy};
use cv_sensing::SensorNoise;
use safe_shield::{Outcome, Planner, WindowSource};

use crate::{EpisodeConfig, EpisodeResult, StackSpec, WindowKind};

/// The episode-result cache: per-episode summaries keyed by content hash,
/// memory-only via [`PersistentCache::new`] or disk-backed via
/// [`PersistentCache::open`] with [`store_salt`] as the segment salt.
pub type EpisodeCache = PersistentCache<EpisodeResult>;

/// Default byte budget for an in-process episode cache (64 MiB — a few
/// hundred thousand episode summaries).
pub const DEFAULT_CACHE_BYTES: usize = 64 << 20;

/// Estimated resident weight of one cached episode result, in bytes: the
/// value itself plus map/LRU bookkeeping. Cached results carry no traces
/// (the batch paths run trace-free), so the struct size dominates.
pub fn episode_weight(result: &EpisodeResult) -> usize {
    let traces = if result.traces.is_some() {
        // Trace-bearing results are heap-heavy and unbounded; weigh them
        // prohibitively so they never crowd out thousands of summaries.
        1 << 20
    } else {
        0
    };
    std::mem::size_of::<EpisodeResult>() + std::mem::size_of::<CacheKey>() + 64 + traces
}

fn feed_state(h: &mut KeyHasher, s: &VehicleState) -> Result<(), KeyError> {
    h.write_f64("position", s.position)?;
    h.write_f64("velocity", s.velocity)?;
    h.write_f64("acceleration", s.acceleration)
}

fn feed_comm(h: &mut KeyHasher, comm: &CommSetting) -> Result<(), KeyError> {
    match comm {
        CommSetting::NoDisturbance => h.write_u8(0),
        CommSetting::Delayed { delay, drop_prob } => {
            h.write_u8(1);
            h.write_f64("comm.delay", *delay)?;
            h.write_f64("comm.drop_prob", *drop_prob)?;
        }
        CommSetting::Lost => h.write_u8(2),
    }
    Ok(())
}

fn feed_noise(h: &mut KeyHasher, noise: &SensorNoise) -> Result<(), KeyError> {
    h.write_f64("noise.delta_p", noise.delta_p)?;
    h.write_f64("noise.delta_v", noise.delta_v)?;
    h.write_f64("noise.delta_a", noise.delta_a)
}

fn feed_driver(h: &mut KeyHasher, driver: &crate::DriverModel) -> Result<(), KeyError> {
    match driver {
        crate::DriverModel::UniformRandom => h.write_u8(0),
        crate::DriverModel::OrnsteinUhlenbeck { theta, sigma } => {
            h.write_u8(1);
            h.write_f64("driver.theta", *theta)?;
            h.write_f64("driver.sigma", *sigma)?;
        }
        crate::DriverModel::ConstantSpeed => h.write_u8(2),
        crate::DriverModel::Ambush { brake_at } => {
            h.write_u8(3);
            h.write_f64("driver.brake_at", *brake_at)?;
        }
        crate::DriverModel::GapTracking { target_gap, gain } => {
            h.write_u8(4);
            h.write_f64("driver.target_gap", *target_gap)?;
            h.write_f64("driver.gain", *gain)?;
        }
    }
    Ok(())
}

impl Hashable for EpisodeConfig {
    fn feed(&self, h: &mut KeyHasher) -> Result<(), KeyError> {
        h.write_f64("other_start_shared", self.other_start_shared)?;
        feed_state(h, &self.ego_init)?;
        h.write_f64("other_init_speed", self.other_init_speed)?;
        h.write_f64("dt_c", self.dt_c)?;
        h.write_f64("dt_m", self.dt_m)?;
        h.write_f64("dt_s", self.dt_s)?;
        h.write_f64("horizon", self.horizon)?;
        feed_comm(h, &self.comm)?;
        feed_noise(h, &self.noise)?;
        h.write_u64(self.seed);
        h.write_f64("sensor_dropout", self.sensor_dropout)?;
        feed_driver(h, &self.driver)?;
        h.write_len(self.extra_others.len());
        for extra in &self.extra_others {
            h.write_f64("extra.start_shared", extra.start_shared)?;
            h.write_f64("extra.init_speed", extra.init_speed)?;
            feed_driver(h, &extra.driver)?;
            match &extra.comm {
                None => h.write_u8(0),
                Some(comm) => {
                    h.write_u8(1);
                    feed_comm(h, comm)?;
                }
            }
        }
        Ok(())
    }
}

fn feed_window(h: &mut KeyHasher, window: WindowKind) {
    h.write_u8(match window {
        WindowKind::Conservative => 0,
        WindowKind::Nominal => 1,
    });
}

fn feed_teacher(h: &mut KeyHasher, policy: &TeacherPolicy) {
    let (bits, name) = policy.content_bits();
    h.write_str(name);
    for b in bits {
        h.write_u64(b);
    }
}

fn feed_nn(h: &mut KeyHasher, planner: &NnPlanner) -> Result<(), KeyError> {
    h.write_str(Planner::name(planner));
    let scaling = planner.scaling();
    h.write_f64("scaling.time", scaling.time)?;
    h.write_f64("scaling.position", scaling.position)?;
    h.write_f64("scaling.velocity", scaling.velocity)?;
    h.write_f64("scaling.window", scaling.window)?;
    let limits = planner.limits();
    h.write_f64("limits.v_min", limits.v_min())?;
    h.write_f64("limits.v_max", limits.v_max())?;
    h.write_f64("limits.a_min", limits.a_min())?;
    h.write_f64("limits.a_max", limits.a_max())?;
    let net = planner.network();
    h.write_len(net.layers().len());
    for layer in net.layers() {
        h.write_len(layer.in_dim());
        h.write_len(layer.out_dim());
        h.write_str(layer.activation().name());
        for w in layer.weights().as_slice() {
            h.write_f64("nn.weight", *w)?;
        }
        for b in layer.bias() {
            h.write_f64("nn.bias", *b)?;
        }
    }
    Ok(())
}

/// Folds the *salt* — everything outside the configs that can change what a
/// simulation produces — into a key stream: the crate version (code
/// evolution invalidates old entries wholesale) and the active
/// behaviour-relevant feature flags (a `fault-injection` build compiles
/// different stack shapes and must never share keys with a default build).
fn feed_salt(h: &mut KeyHasher) {
    h.write_str(concat!("cv-sim/", env!("CARGO_PKG_VERSION")));
    h.write_u8(u8::from(cfg!(feature = "fault-injection")));
}

/// The segment-store salt: the same code-version + feature-flag stream that
/// salts every [`stack_digest`], hashed alone. A persistent cache directory
/// written by a different binary (version bump, feature change) fails the
/// salt check at startup and is *refused* — counted as stale, never misread
/// — instead of serving results the current code would not reproduce.
pub fn store_salt() -> CacheKey {
    let mut h = KeyHasher::new();
    feed_salt(&mut h);
    h.finish()
}

/// Content digest of a planner stack, salted with the code version and
/// active feature flags. Compute once per batch, then mix into each
/// episode's key with [`episode_key`].
///
/// # Errors
///
/// [`KeyError`] if any stack parameter (including an NN weight) is NaN.
pub fn stack_digest(spec: &StackSpec) -> Result<CacheKey, KeyError> {
    let mut h = KeyHasher::new();
    feed_salt(&mut h);
    match spec {
        StackSpec::PureNn { planner, window } => {
            h.write_u8(0);
            feed_window(&mut h, *window);
            feed_nn(&mut h, planner)?;
        }
        StackSpec::PureTeacher { policy, window } => {
            h.write_u8(1);
            feed_window(&mut h, *window);
            feed_teacher(&mut h, policy);
        }
        #[cfg(feature = "fault-injection")]
        StackSpec::PanicInjection {
            policy,
            window,
            panic_seeds,
        } => {
            h.write_u8(2);
            feed_window(&mut h, *window);
            feed_teacher(&mut h, policy);
            h.write_len(panic_seeds.len());
            for seed in panic_seeds {
                h.write_u64(*seed);
            }
        }
        StackSpec::Compound {
            planner,
            filter_mode,
            window_source,
        } => {
            h.write_u8(3);
            h.write_u8(match filter_mode {
                FilterMode::HardOnly => 0,
                FilterMode::Fused => 1,
            });
            match window_source {
                WindowSource::Conservative => h.write_u8(0),
                WindowSource::Aggressive(cfg) => {
                    h.write_u8(1);
                    h.write_f64("aggressive.a_buf", cfg.a_buf)?;
                    h.write_f64("aggressive.v_buf", cfg.v_buf)?;
                }
            }
            feed_nn(&mut h, planner)?;
        }
    }
    Ok(h.finish())
}

/// The content key of one episode: the batch's stack digest mixed with the
/// full episode configuration.
///
/// # Errors
///
/// [`KeyError`] if any floating-point field of `cfg` is NaN.
pub fn episode_key(stack: CacheKey, cfg: &EpisodeConfig) -> Result<CacheKey, KeyError> {
    let mut h = KeyHasher::new();
    h.write_u64(stack.hi);
    h.write_u64(stack.lo);
    cfg.feed(&mut h)?;
    Ok(h.finish())
}

// The persistent record encoding of an episode result (DESIGN.md §17):
// fixed little-endian layout, no self-description — the segment header's
// version + salt already pin the writer, and the per-record CRC64 pins the
// bytes. Trace-bearing results are refused (`encode_persist` returns
// `false`): traces are heap-heavy, batch paths never produce them, and a
// memory-only entry is the right place for the odd one that exists.
impl PersistValue for EpisodeResult {
    fn encode_persist(&self, out: &mut Vec<u8>) -> bool {
        if self.traces.is_some() {
            return false;
        }
        match self.outcome {
            Outcome::Collision { time } => {
                out.push(0);
                out.extend_from_slice(&time.to_bits().to_le_bytes());
            }
            Outcome::Reached { time } => {
                out.push(1);
                out.extend_from_slice(&time.to_bits().to_le_bytes());
            }
            Outcome::Timeout => {
                out.push(2);
                out.extend_from_slice(&0u64.to_le_bytes());
            }
        }
        out.extend_from_slice(&self.eta.to_bits().to_le_bytes());
        out.extend_from_slice(&self.emergency_steps.to_le_bytes());
        out.extend_from_slice(&self.total_steps.to_le_bytes());
        match self.collided_pair {
            None => {
                out.push(0);
                out.extend_from_slice(&0u64.to_le_bytes());
            }
            Some(i) => {
                out.push(1);
                out.extend_from_slice(&(i as u64).to_le_bytes());
            }
        }
        true
    }

    fn decode_persist(bytes: &[u8]) -> Option<Self> {
        // 2 tag bytes + 5 u64 fields, and nothing trailing: a record that
        // is the wrong length was not written by this encoder.
        const LEN: usize = 2 + 5 * 8;
        if bytes.len() != LEN {
            return None;
        }
        let u64_at = |off: usize| u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
        let outcome = match bytes[0] {
            0 => Outcome::Collision {
                time: f64::from_bits(u64_at(1)),
            },
            1 => Outcome::Reached {
                time: f64::from_bits(u64_at(1)),
            },
            2 => Outcome::Timeout,
            _ => return None,
        };
        let collided_pair = match bytes[33] {
            0 => None,
            1 => Some(u64_at(34) as usize),
            _ => return None,
        };
        Some(EpisodeResult {
            outcome,
            eta: f64::from_bits(u64_at(9)),
            emergency_steps: u64_at(17),
            total_steps: u64_at(25),
            collided_pair,
            traces: None,
        })
    }

    fn reload_weight(&self) -> usize {
        episode_weight(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DriverModel;

    fn base() -> EpisodeConfig {
        EpisodeConfig::paper_default(11)
    }

    fn digest() -> CacheKey {
        stack_digest(&StackSpec::pure_teacher_conservative(&base()).unwrap()).unwrap()
    }

    fn key_of(cfg: &EpisodeConfig) -> CacheKey {
        episode_key(digest(), cfg).unwrap()
    }

    cv_rng::props! {
        fn identical_configs_key_equal(cases = 64, seed in 0..u64::MAX, start in 50.0..60.0) {
            let mut a = EpisodeConfig::paper_default(seed);
            a.other_start_shared = start;
            // An independently reconstructed config — not a clone — must
            // produce the same key: the hash is content, not identity.
            let mut b = EpisodeConfig::paper_default(seed);
            b.other_start_shared = start;
            assert_eq!(key_of(&a), key_of(&b));
            let d1 = stack_digest(&StackSpec::pure_teacher_conservative(&a).unwrap()).unwrap();
            let d2 = stack_digest(&StackSpec::pure_teacher_conservative(&b).unwrap()).unwrap();
            assert_eq!(d1, d2);
        }
    }

    #[test]
    fn flipping_any_single_field_changes_the_key() {
        type Mutation = (&'static str, fn(&mut EpisodeConfig));
        let mutations: &[Mutation] = &[
            ("other_start_shared", |c| c.other_start_shared += 0.5),
            ("ego_init.position", |c| c.ego_init.position += 1.0),
            ("ego_init.velocity", |c| c.ego_init.velocity += 1.0),
            ("ego_init.acceleration", |c| c.ego_init.acceleration += 0.5),
            ("other_init_speed", |c| c.other_init_speed += 1.0),
            ("dt_c", |c| c.dt_c = 0.025),
            ("dt_m", |c| c.dt_m = 0.2),
            ("dt_s", |c| c.dt_s = 0.2),
            ("horizon", |c| c.horizon += 5.0),
            ("comm->delayed", |c| {
                c.comm = CommSetting::Delayed {
                    delay: 0.25,
                    drop_prob: 0.0,
                }
            }),
            ("comm->lost", |c| c.comm = CommSetting::Lost),
            ("noise.delta_p", |c| c.noise.delta_p += 0.5),
            ("noise.delta_v", |c| c.noise.delta_v += 0.5),
            ("noise.delta_a", |c| c.noise.delta_a += 0.5),
            ("seed", |c| c.seed += 1),
            ("sensor_dropout", |c| c.sensor_dropout = 0.1),
            ("sensor_dropout->-0.0", |c| c.sensor_dropout = -0.0),
            ("driver->ou", |c| {
                c.driver = DriverModel::OrnsteinUhlenbeck {
                    theta: 0.5,
                    sigma: 1.0,
                }
            }),
            ("driver->constant", |c| {
                c.driver = DriverModel::ConstantSpeed
            }),
            ("driver->ambush", |c| {
                c.driver = DriverModel::Ambush { brake_at: 2.0 }
            }),
            ("extra_others.push", |c| {
                c.extra_others.push(crate::ExtraVehicle::new(
                    80.0,
                    9.0,
                    DriverModel::UniformRandom,
                ))
            }),
        ];
        let reference = key_of(&base());
        for (name, mutate) in mutations {
            let mut cfg = base();
            mutate(&mut cfg);
            assert_ne!(
                key_of(&cfg),
                reference,
                "mutation '{name}' did not change the key"
            );
        }
    }

    #[test]
    fn every_platoon_vehicle_field_flip_changes_the_key() {
        let platoon = || crate::PlatoonSpec::paper_default(4, 17).unwrap();
        let reference = key_of(&platoon().episode());
        // Independently reconstructed identical platoons collide (content,
        // not identity).
        assert_eq!(key_of(&platoon().episode()), reference);

        type Mutation = (&'static str, fn(&mut crate::PlatoonSpec));
        let mutations: &[Mutation] = &[
            ("follower[0].gap", |p| p.followers[0].gap += 0.5),
            ("follower[1].gap", |p| p.followers[1].gap += 0.5),
            ("follower[0].init_speed", |p| {
                p.followers[0].init_speed += 1.0
            }),
            ("follower[1].policy_gain", |p| {
                p.followers[1].policy_gain += 0.1
            }),
            ("follower[0].comm->delayed", |p| {
                p.followers[0].comm = Some(CommSetting::Delayed {
                    delay: 0.25,
                    drop_prob: 0.0,
                })
            }),
            ("follower[1].comm->lost", |p| {
                p.followers[1].comm = Some(CommSetting::Lost)
            }),
            ("leader.comm->delayed", |p| {
                p.comm = CommSetting::Delayed {
                    delay: 0.25,
                    drop_prob: 0.1,
                }
            }),
            ("leader_start_shared", |p| p.leader_start_shared += 1.0),
        ];
        for (name, mutate) in mutations {
            let mut spec = platoon();
            mutate(&mut spec);
            assert_ne!(
                key_of(&spec.episode()),
                reference,
                "platoon mutation '{name}' did not change the key"
            );
        }

        // Per-pair channel knobs: with an override present, both the delay
        // and the drop probability of that single pair are keyed.
        let delayed = |delay, drop_prob| {
            let mut spec = platoon();
            spec.followers[1].comm = Some(CommSetting::Delayed { delay, drop_prob });
            key_of(&spec.episode())
        };
        assert_ne!(delayed(0.25, 0.1), delayed(0.5, 0.1), "pair delay inert");
        assert_ne!(
            delayed(0.25, 0.1),
            delayed(0.25, 0.2),
            "pair drop_prob inert"
        );

        // An explicit override equal to the inherited setting is still a
        // different config (`Some(x)` vs `None`): the key must not alias
        // the two spellings, because a later template change to the
        // inherited comm would silently diverge them.
        let mut pinned = platoon();
        pinned.followers[0].comm = Some(pinned.comm);
        assert_ne!(key_of(&pinned.episode()), reference);
    }

    #[test]
    fn each_disturbance_knob_changes_the_key() {
        let mut delayed = base();
        delayed.comm = CommSetting::Delayed {
            delay: 0.25,
            drop_prob: 0.35,
        };
        let reference = key_of(&delayed);
        let mut delay_bump = delayed.clone();
        delay_bump.comm = CommSetting::Delayed {
            delay: 0.5,
            drop_prob: 0.35,
        };
        assert_ne!(key_of(&delay_bump), reference, "delay knob inert");
        let mut drop_bump = delayed.clone();
        drop_bump.comm = CommSetting::Delayed {
            delay: 0.25,
            drop_prob: 0.4,
        };
        assert_ne!(key_of(&drop_bump), reference, "drop_prob knob inert");
    }

    #[test]
    fn negative_zero_differs_from_zero_everywhere_it_can_appear() {
        let mut plus = base();
        plus.ego_init.acceleration = 0.0;
        let mut minus = base();
        minus.ego_init.acceleration = -0.0;
        assert_ne!(key_of(&plus), key_of(&minus));
    }

    #[test]
    fn nan_bearing_configs_are_rejected_with_a_typed_error() {
        type Poison = (&'static str, fn(&mut EpisodeConfig));
        let poisons: &[Poison] = &[
            ("other_start_shared", |c| c.other_start_shared = f64::NAN),
            ("ego_init.velocity", |c| c.ego_init.velocity = f64::NAN),
            ("dt_c", |c| c.dt_c = f64::NAN),
            ("horizon", |c| c.horizon = f64::NAN),
            ("comm.delay", |c| {
                c.comm = CommSetting::Delayed {
                    delay: f64::NAN,
                    drop_prob: 0.0,
                }
            }),
            ("comm.drop_prob", |c| {
                c.comm = CommSetting::Delayed {
                    delay: 0.25,
                    drop_prob: f64::NAN,
                }
            }),
            ("noise.delta_v", |c| c.noise.delta_v = f64::NAN),
            ("sensor_dropout", |c| c.sensor_dropout = f64::NAN),
            ("driver.sigma", |c| {
                c.driver = DriverModel::OrnsteinUhlenbeck {
                    theta: 0.5,
                    sigma: f64::NAN,
                }
            }),
            ("extra.init_speed", |c| {
                c.extra_others.push(crate::ExtraVehicle::new(
                    80.0,
                    f64::NAN,
                    DriverModel::UniformRandom,
                ))
            }),
            ("driver.gain", |c| {
                c.extra_others.push(crate::ExtraVehicle::new(
                    80.0,
                    9.0,
                    DriverModel::GapTracking {
                        target_gap: 9.0,
                        gain: f64::NAN,
                    },
                ))
            }),
            ("driver.target_gap", |c| {
                c.extra_others.push(crate::ExtraVehicle::new(
                    80.0,
                    9.0,
                    DriverModel::GapTracking {
                        target_gap: f64::NAN,
                        gain: 0.6,
                    },
                ))
            }),
            ("extra.comm.delay", |c| {
                c.extra_others.push(
                    crate::ExtraVehicle::new(80.0, 9.0, DriverModel::UniformRandom).with_comm(
                        CommSetting::Delayed {
                            delay: f64::NAN,
                            drop_prob: 0.0,
                        },
                    ),
                )
            }),
            ("extra.comm.drop_prob", |c| {
                c.extra_others.push(
                    crate::ExtraVehicle::new(80.0, 9.0, DriverModel::UniformRandom).with_comm(
                        CommSetting::Delayed {
                            delay: 0.25,
                            drop_prob: f64::NAN,
                        },
                    ),
                )
            }),
        ];
        for (name, poison) in poisons {
            let mut cfg = base();
            poison(&mut cfg);
            match episode_key(digest(), &cfg) {
                Err(KeyError::NanField { field }) => {
                    assert!(
                        field.contains(name.split('.').next_back().unwrap()),
                        "poison '{name}' surfaced as field '{field}'"
                    );
                }
                Ok(_) => panic!("poison '{name}' was silently keyed"),
            }
        }
    }

    #[test]
    fn stack_digest_distinguishes_policies_and_windows() {
        let cfg = base();
        let cons = stack_digest(&StackSpec::pure_teacher_conservative(&cfg).unwrap()).unwrap();
        let aggr = stack_digest(&StackSpec::pure_teacher_aggressive(&cfg).unwrap()).unwrap();
        assert_ne!(cons, aggr);
        // Same policy, different window flavour.
        let StackSpec::PureTeacher { policy, .. } =
            StackSpec::pure_teacher_conservative(&cfg).unwrap()
        else {
            unreachable!()
        };
        let nominal = stack_digest(&StackSpec::PureTeacher {
            policy,
            window: WindowKind::Nominal,
        })
        .unwrap();
        assert_ne!(cons, nominal);
    }

    #[test]
    fn episode_key_depends_on_the_stack_digest() {
        let cfg = base();
        let cons = stack_digest(&StackSpec::pure_teacher_conservative(&cfg).unwrap()).unwrap();
        let aggr = stack_digest(&StackSpec::pure_teacher_aggressive(&cfg).unwrap()).unwrap();
        assert_ne!(
            episode_key(cons, &cfg).unwrap(),
            episode_key(aggr, &cfg).unwrap()
        );
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn panic_seed_list_is_part_of_the_digest() {
        let cfg = base();
        let a = stack_digest(&StackSpec::panic_injection(&cfg, vec![1]).unwrap()).unwrap();
        let b = stack_digest(&StackSpec::panic_injection(&cfg, vec![2]).unwrap()).unwrap();
        let none = stack_digest(&StackSpec::panic_injection(&cfg, vec![]).unwrap()).unwrap();
        let teacher = stack_digest(&StackSpec::pure_teacher_conservative(&cfg).unwrap()).unwrap();
        assert_ne!(a, b);
        assert_ne!(a, none);
        assert_ne!(none, teacher, "injection wrapper aliases the plain teacher");
    }

    #[test]
    fn episode_result_persist_round_trip_is_bit_identical() {
        let results = [
            EpisodeResult {
                outcome: safe_shield::Outcome::Reached { time: 7.25 },
                eta: -0.0,
                emergency_steps: 3,
                total_steps: 401,
                collided_pair: None,
                traces: None,
            },
            EpisodeResult {
                outcome: safe_shield::Outcome::Collision { time: 1.5 },
                eta: f64::NEG_INFINITY,
                emergency_steps: 0,
                total_steps: 12,
                collided_pair: Some(2),
                traces: None,
            },
            EpisodeResult {
                outcome: safe_shield::Outcome::Timeout,
                eta: 0.125,
                emergency_steps: 9,
                total_steps: u64::MAX,
                collided_pair: None,
                traces: None,
            },
        ];
        for r in &results {
            let mut buf = Vec::new();
            assert!(r.encode_persist(&mut buf));
            let back = EpisodeResult::decode_persist(&buf).expect("decodable");
            assert_eq!(back.outcome, r.outcome);
            assert_eq!(back.eta.to_bits(), r.eta.to_bits(), "eta bits must survive");
            assert_eq!(back.emergency_steps, r.emergency_steps);
            assert_eq!(back.total_steps, r.total_steps);
            assert_eq!(back.collided_pair, r.collided_pair);
            assert!(back.traces.is_none());
            // Truncated or padded buffers are refused, not misread.
            assert!(EpisodeResult::decode_persist(&buf[..buf.len() - 1]).is_none());
            let mut padded = buf.clone();
            padded.push(0);
            assert!(EpisodeResult::decode_persist(&padded).is_none());
        }
        // Trace-bearing results refuse to persist without counting as a
        // fault.
        let heavy = EpisodeResult {
            traces: Some(Default::default()),
            ..results[0].clone()
        };
        assert!(!heavy.encode_persist(&mut Vec::new()));
    }

    #[test]
    fn trace_bearing_results_weigh_prohibitively() {
        let slim = EpisodeResult {
            outcome: safe_shield::Outcome::Timeout,
            eta: 0.0,
            emergency_steps: 0,
            total_steps: 10,
            collided_pair: None,
            traces: None,
        };
        let heavy = EpisodeResult {
            traces: Some(Default::default()),
            ..slim.clone()
        };
        assert!(episode_weight(&heavy) > 100 * episode_weight(&slim));
    }
}
