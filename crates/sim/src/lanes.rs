//! Lane-batched episode execution: K episodes stepped in lockstep per
//! worker, with every deferred NN evaluation of the group answered by one
//! batched forward pass ([`cv_nn::Mlp::forward_batch_into`]).
//!
//! The per-episode path evaluates the planner network once per control
//! step on a 1-row input — far below the arithmetic intensity the dense
//! kernels want. Here each worker owns a [`LaneGroup`] of `K ≤ 8` episode
//! *lanes*; every lane runs its own episode through a resumable
//! [`EpisodeStepper`] that executes communication, sensing, estimation,
//! window fusion, and (for compound stacks) the monitor/emergency logic
//! per episode, but **defers** NN evaluations. The group gathers the
//! deferred observations into the columns of a structure-of-arrays input
//! slab and answers all of them with one `(out×in)·(in×8)` matmul chain.
//!
//! **Refill policy:** lanes are independent. When an episode finishes
//! early (collision / reached target), its lane immediately claims the
//! next unclaimed episode index from the shared [`WorkQueue`] — an
//! early-exit episode never stalls the rest of the group. A lane whose
//! stepper is between NN steps (emergency planner in control) simply
//! skips rounds of the batched forward.
//!
//! **Determinism and tolerance contract (DESIGN.md §15):** which lane —
//! and which group — an episode lands in is racy by design, so per-episode
//! numerics are *lane-invariant*: the batched kernels compute each output
//! column from its own input column with an identical operation order, and
//! dead lanes carry zeros. Results therefore depend only on the episode
//! configuration and the configured [`BatchMode`]:
//!
//! * `Lanes(1)` routes every NN evaluation through the exact per-episode
//!   `predict_into` path and is **bit-identical** to
//!   [`crate::run_batch_supervised`];
//! * `Lanes(k)` for `k > 1` uses the padded 8-wide kernel, whose FMA
//!   contraction and vectorized tanh differ from the per-episode path at
//!   the last few ulps; trajectories can diverge at decision boundaries,
//!   bounded by the per-field gate in [`lane_tolerance_check`].

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};

use cv_comm::Message;
use cv_dynamics::{VehicleLimits, VehicleState};
use cv_nn::{BatchScratch, LanePlan, Matrix, Mlp, MlpScratch, LANE_WIDTH};
use cv_planner::NnPlanner;
use safe_shield::{Observation, Outcome, PlannerSource, Scenario};

use crate::cadence::Cadence;
use crate::events::run_batch_event_driven;
use crate::scheduler::WorkQueue;
use crate::stack::StepPlan;
use crate::supervise::payload_string;
use crate::{
    run_batch_supervised, BatchConfig, BatchReport, EpisodeConfig, EpisodeOutcome, EpisodeResult,
    EpisodeWorkspace, Quarantine, SimError, SkipReason, StackSpec,
};

/// How a batch distributes episodes over each worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchMode {
    /// The reference path: one episode at a time per worker, bit-identical
    /// to [`crate::run_batch_supervised`].
    PerEpisode,
    /// K episodes stepped in lockstep per worker (`1 ≤ K ≤` [`LANE_WIDTH`]).
    /// `Lanes(1)` is bit-identical to [`BatchMode::PerEpisode`]; larger K
    /// is covered by the tolerance contract (module docs).
    Lanes(usize),
    /// The event-driven engine ([`crate::events`]): one episode at a time
    /// per worker, with V2V deliveries scheduled on an event wheel and
    /// cleared vehicle pairs retired from the per-tick loop. Bit-identical
    /// to [`BatchMode::PerEpisode`] (DESIGN.md §18); fastest on sparse
    /// platoon workloads where most pairs are quiescent most of the time.
    EventDriven,
}

impl BatchMode {
    /// The lane count this mode runs (`1` for the per-episode and
    /// event-driven paths).
    pub fn lanes(&self) -> usize {
        match self {
            BatchMode::PerEpisode | BatchMode::EventDriven => 1,
            BatchMode::Lanes(k) => *k,
        }
    }

    /// Rejects lane counts outside `1..=`[`LANE_WIDTH`].
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidBatch`] with the offending count.
    pub fn validate(&self) -> Result<(), SimError> {
        match self {
            BatchMode::PerEpisode | BatchMode::EventDriven => Ok(()),
            BatchMode::Lanes(k) if (1..=LANE_WIDTH).contains(k) => Ok(()),
            BatchMode::Lanes(k) => Err(SimError::InvalidBatch {
                reason: format!("lane count {k} outside 1..={LANE_WIDTH}"),
            }),
        }
    }
}

/// Tolerance gate between a lane-batched [`EpisodeResult`] and its
/// per-episode reference: two control periods of time slack at a decision
/// boundary, and the `η` drift that time slack implies.
pub const LANE_TOL_TIME: f64 = 0.1;
/// `η` tolerance of the gate (`η = 1/t_r`; `LANE_TOL_TIME` at `t_r ≳ 4 s`
/// moves `η` by well under this).
pub const LANE_TOL_ETA: f64 = 0.01;
/// Step-count tolerance of the gate (total and emergency steps).
pub const LANE_TOL_STEPS: u64 = 4;

/// The per-field tolerance contract between a lane-batched episode result
/// and the per-episode reference (module docs; DESIGN.md §15): identical
/// outcome *kind*, outcome time within [`LANE_TOL_TIME`], `η` within
/// [`LANE_TOL_ETA`], and step counters within [`LANE_TOL_STEPS`].
///
/// # Errors
///
/// A human-readable description of the first violated field.
pub fn lane_tolerance_check(
    reference: &EpisodeResult,
    batched: &EpisodeResult,
) -> Result<(), String> {
    let time_of = |o: &Outcome| match o {
        Outcome::Collision { time } | Outcome::Reached { time } => Some(*time),
        Outcome::Timeout => None,
    };
    let kind = |o: &Outcome| match o {
        Outcome::Collision { .. } => "collision",
        Outcome::Reached { .. } => "reached",
        Outcome::Timeout => "timeout",
    };
    if kind(&reference.outcome) != kind(&batched.outcome) {
        return Err(format!(
            "outcome kind diverged: reference {:?} vs batched {:?}",
            reference.outcome, batched.outcome
        ));
    }
    if let (Some(a), Some(b)) = (time_of(&reference.outcome), time_of(&batched.outcome)) {
        if (a - b).abs() > LANE_TOL_TIME {
            return Err(format!("outcome time diverged: {a} vs {b}"));
        }
    }
    if (reference.eta - batched.eta).abs() > LANE_TOL_ETA {
        return Err(format!(
            "eta diverged: {} vs {}",
            reference.eta, batched.eta
        ));
    }
    if reference.total_steps.abs_diff(batched.total_steps) > LANE_TOL_STEPS {
        return Err(format!(
            "total_steps diverged: {} vs {}",
            reference.total_steps, batched.total_steps
        ));
    }
    if reference.emergency_steps.abs_diff(batched.emergency_steps) > LANE_TOL_STEPS {
        return Err(format!(
            "emergency_steps diverged: {} vs {}",
            reference.emergency_steps, batched.emergency_steps
        ));
    }
    Ok(())
}

/// What [`EpisodeStepper::advance`] came back with.
enum StepAdvance {
    /// The episode reached its ground-truth outcome.
    Finished(EpisodeResult),
    /// The stepper is parked mid-step: the NN must be evaluated on `obs`
    /// and the lane resumed with the mapped acceleration.
    NeedsNn { obs: Observation },
    /// The interrupt flag was observed set at a step boundary.
    Interrupted,
}

/// Mutable per-episode state of a parked [`EpisodeStepper`].
struct RunState {
    cfg: EpisodeConfig,
    slot: usize,
    ego: VehicleState,
    ego_limits: VehicleLimits,
    other_limits: VehicleLimits,
    /// Broadcast cadence, in countdown form (broadcast when due).
    msg: Cadence,
    /// Sensing cadence, in countdown form (sense when due).
    sense: Cadence,
    steps: u64,
    step: u64,
    emergency_steps: u64,
    total_steps: u64,
    /// Step time of the outstanding NN evaluation, when parked.
    pending_time: Option<f64>,
}

impl RunState {
    /// Advances the step counter and the cadence countdowns together; the
    /// two actuation sites (the inline `Ready` path and
    /// [`EpisodeStepper::resume`]) must stay in lockstep on all three.
    fn advance_step(&mut self) {
        self.step += 1;
        self.msg.advance();
        self.sense.advance();
    }
}

/// A resumable episode: the exact event loop of
/// [`EpisodeWorkspace::run_interruptible`] (communication, sensing,
/// ground-truth checks, planning, dynamics — in that order, same RNG
/// streams), restructured as a state machine that parks whenever the stack
/// defers an NN evaluation ([`StepAdvance::NeedsNn`]). Lane mode never
/// records traces.
struct EpisodeStepper {
    ws: EpisodeWorkspace,
    run: Option<RunState>,
}

impl EpisodeStepper {
    fn new(spec: StackSpec) -> Self {
        Self {
            ws: EpisodeWorkspace::new(spec),
            run: None,
        }
    }

    /// Arms the stepper for one episode (scenario lookup, vehicle/channel
    /// re-arm, executor reinit) without running any step.
    ///
    /// # Errors
    ///
    /// [`SimError::Scenario`] for an invalid geometry, exactly as
    /// [`EpisodeWorkspace::run`] would.
    fn start(&mut self, cfg: &EpisodeConfig) -> Result<(), SimError> {
        #[cfg(feature = "fault-injection")]
        if let StackSpec::PanicInjection { panic_seeds, .. } = self.ws.spec() {
            assert!(
                !panic_seeds.contains(&cfg.seed),
                "injected planner fault for seed {}",
                cfg.seed
            );
        }
        let slot = self.ws.scenario_slot(cfg)?;
        let ego_limits = self.ws.cached_scenarios(slot)[0].ego_limits();
        let other_limits = self.ws.cached_scenarios(slot)[0].other_limits();
        self.ws.arm_vehicles(cfg, other_limits);

        let EpisodeWorkspace {
            spec,
            exec,
            scenario_cache,
            others,
            ..
        } = &mut self.ws;
        let scenarios = scenario_cache[slot].1.as_slice();
        match exec {
            Some(e) => spec.reinit(e, cfg, scenarios, others),
            None => *exec = Some(spec.build(cfg, scenarios)),
        }

        self.run = Some(RunState {
            ego: cfg.ego_init,
            msg: Cadence::new(cfg.dt_m, cfg.dt_c),
            sense: Cadence::new(cfg.dt_s, cfg.dt_c),
            steps: (cfg.horizon / cfg.dt_c).ceil() as u64,
            step: 0,
            emergency_steps: 0,
            total_steps: 0,
            pending_time: None,
            cfg: cfg.clone(),
            slot,
            ego_limits,
            other_limits,
        });
        Ok(())
    }

    /// Runs the episode forward until it finishes, defers an NN step, or
    /// observes the interrupt flag at a step boundary.
    ///
    /// When the stepper is parked on a deferred evaluation, `resume` must
    /// carry the mapped acceleration: the call first completes the parked
    /// step (decision source [`PlannerSource::NeuralNetwork`], the exact
    /// actuation tail of the per-episode loop) and then keeps stepping.
    /// Folding the resume into the advance this way costs one prologue
    /// (workspace destructure, scenario lookup) per lane per round instead
    /// of two.
    ///
    /// # Panics
    ///
    /// Panics if called without a successful [`EpisodeStepper::start`], if
    /// an evaluation is outstanding and `resume` is `None`, or if `resume`
    /// is `Some` with no evaluation outstanding.
    fn advance(&mut self, resume: Option<f64>, interrupt: Option<&AtomicBool>) -> StepAdvance {
        let EpisodeStepper { ws, run } = self;
        let state = run.as_mut().expect("advance() before start()");
        let EpisodeWorkspace {
            exec,
            scenario_cache,
            channels,
            sensors,
            drivers,
            others,
            inbox,
            ..
        } = ws;
        let exec = exec.as_mut().expect("executor armed by start()");
        let scenarios = scenario_cache[state.slot].1.as_slice();
        // Copied out so `state` stays free for whole-struct method calls
        // (`advance_step`) inside the loop.
        let dt_c = state.cfg.dt_c;
        let sensor_dropout = state.cfg.sensor_dropout;

        match (state.pending_time.take(), resume) {
            (Some(t), Some(accel)) => {
                state.ego = state.ego_limits.step(&state.ego, accel, dt_c);
                crate::driver::actuate_others(&state.cfg, state.other_limits, drivers, others, t);
                state.advance_step();
            }
            (None, None) => {}
            (Some(_), None) => panic!("advance() with an NN evaluation outstanding"),
            (None, Some(_)) => panic!("resume without an outstanding NN evaluation"),
        }

        let (outcome, collided_pair) = loop {
            if state.step > state.steps {
                break (Outcome::Timeout, None);
            }
            if let Some(flag) = interrupt {
                if flag.load(Ordering::Relaxed) {
                    return StepAdvance::Interrupted;
                }
            }
            let t = state.step as f64 * dt_c;
            let msg_now = state.msg.due();
            let sense_now = state.sense.due();

            // V2V broadcast and delivery, then sensing — per vehicle.
            for (i, other) in others.iter().enumerate() {
                if msg_now {
                    channels[i]
                        .chan
                        .send(Message::from_state(1 + i, t, other), t);
                }
                inbox.clear();
                channels[i].chan.receive_into(t, inbox);
                for msg in inbox.iter() {
                    exec.estimator_mut(i).on_message(msg);
                }
                if sense_now {
                    // Dropout-free sensors keep the historical RNG stream.
                    let maybe = if sensor_dropout > 0.0 {
                        sensors[i].try_measure(1 + i, t, other)
                    } else {
                        Some(sensors[i].measure(1 + i, t, other))
                    };
                    if let Some(m) = maybe {
                        exec.estimator_mut(i).on_measurement(&m);
                    }
                }
            }

            // Ground-truth evaluation, attributed to the colliding pair.
            if let Some(hit) = scenarios
                .iter()
                .zip(others.iter())
                .position(|(s, other)| s.collision(&state.ego, other))
            {
                break (Outcome::Collision { time: t }, Some(hit));
            }
            if scenarios[0].target_reached(t, &state.ego) {
                break (Outcome::Reached { time: t }, None);
            }

            // Plan; either complete the step inline or park for the group.
            match exec.plan_prepare(t, &state.ego) {
                StepPlan::Ready(decision) => {
                    state.total_steps += 1;
                    if decision.source == PlannerSource::Emergency {
                        state.emergency_steps += 1;
                    }
                    state.ego = state.ego_limits.step(&state.ego, decision.accel, dt_c);
                    crate::driver::actuate_others(
                        &state.cfg,
                        state.other_limits,
                        drivers,
                        others,
                        t,
                    );
                    state.advance_step();
                }
                StepPlan::Nn { obs } => {
                    state.total_steps += 1;
                    state.pending_time = Some(t);
                    return StepAdvance::NeedsNn { obs };
                }
            }
        };

        let result = EpisodeResult {
            eta: outcome.eta(),
            outcome,
            emergency_steps: state.emergency_steps,
            total_steps: state.total_steps,
            collided_pair,
            traces: None,
        };
        *run = None;
        StepAdvance::Finished(result)
    }

    /// Discards the (possibly torn) workspace after a contained panic and
    /// rebuilds it from the spec — the same recovery as
    /// [`EpisodeWorkspace::run_supervised`].
    fn rebuild(&mut self) {
        let spec = self.ws.spec().clone();
        self.ws = EpisodeWorkspace::new(spec);
        self.run = None;
    }
}

/// The group's shared batched NN evaluator: the lane plan (pre-transposed
/// weights), the SoA activation slabs, and the gather/scatter buffers.
struct GroupNn {
    plan: LanePlan,
    scratch: BatchScratch,
    /// `FEATURES × LANE_WIDTH` input slab; dead columns are zeroed.
    input: Matrix,
    /// `1 × LANE_WIDTH` output slab.
    out: Matrix,
    scaling: cv_planner::FeatureScaling,
    limits: VehicleLimits,
    net: Mlp,
    /// Per-sample scratch for the `Lanes(1)` exact path.
    solo: MlpScratch,
}

impl GroupNn {
    fn new(planner: &NnPlanner) -> Self {
        let net = planner.network().clone();
        Self {
            plan: net.lane_plan(),
            scratch: BatchScratch::for_net(&net),
            input: Matrix::zeros(Observation::FEATURES, LANE_WIDTH),
            out: Matrix::zeros(net.output_dim(), LANE_WIDTH),
            scaling: planner.scaling(),
            limits: planner.limits(),
            solo: MlpScratch::for_net(&net),
            net,
        }
    }

    /// Writes lane `slot`'s scaled features into its input column.
    fn gather(&mut self, slot: usize, obs: &Observation) {
        let features = NnPlanner::scaled_features(&self.scaling, obs);
        // Strided column write through the flat slab: the input is
        // FEATURES × LANE_WIDTH row-major, so lane `slot` lives at
        // `row * LANE_WIDTH + slot`. One bounds check per element on a
        // pre-sliced buffer beats the 2-D checked `set` on the per-step
        // hot path.
        let data = self.input.as_mut_slice();
        for (row, f) in features.iter().enumerate() {
            data[row * LANE_WIDTH + slot] = *f;
        }
    }

    /// Zeroes a dead lane's input column.
    fn clear_lane(&mut self, slot: usize) {
        let data = self.input.as_mut_slice();
        for row in 0..Observation::FEATURES {
            data[row * LANE_WIDTH + slot] = 0.0;
        }
    }

    /// One batched forward pass over the gathered columns.
    fn forward(&mut self) {
        self.net
            .forward_batch_into(&self.plan, &self.input, &mut self.scratch, &mut self.out)
            .expect("slab shapes fixed at construction");
    }

    /// Lane `slot`'s mapped acceleration after [`GroupNn::forward`].
    fn accel(&self, slot: usize) -> f64 {
        NnPlanner::map_output(&self.limits, self.out.get(0, slot))
    }

    /// The `Lanes(1)` exact path: per-sample `predict_into`, bit-identical
    /// to [`NnPlanner`]'s own `plan`.
    fn solo_accel(&mut self, obs: &Observation) -> f64 {
        let features = NnPlanner::scaled_features(&self.scaling, obs);
        let mut out = [0.0f64];
        self.net
            .predict_into(&features, &mut self.solo, &mut out)
            .expect("network arity checked at planner construction");
        NnPlanner::map_output(&self.limits, out[0])
    }
}

/// One lane slot of a [`LaneGroup`].
struct Lane {
    stepper: EpisodeStepper,
    /// Episode index this lane is running; meaningless when inactive.
    index: usize,
    /// Seed of that episode (kept so fault reporting never rebuilds the
    /// episode config mid-round).
    seed: u64,
    active: bool,
    /// Gathered an NN evaluation this round; resumed after the forward.
    waiting: bool,
}

/// K episode lanes driven in lockstep by one worker (module docs).
struct LaneGroup {
    lanes: Vec<Lane>,
    nn: GroupNn,
    k: usize,
}

impl LaneGroup {
    fn new(spec: &StackSpec, planner: &NnPlanner, k: usize) -> Self {
        Self {
            lanes: (0..k)
                .map(|_| Lane {
                    stepper: EpisodeStepper::new(spec.clone()),
                    index: usize::MAX,
                    seed: 0,
                    active: false,
                    waiting: false,
                })
                .collect(),
            nn: GroupNn::new(planner),
            k,
        }
    }

    /// Claims episodes for every inactive lane; episodes that are skipped,
    /// invalid, or panic during arming are emitted without occupying a
    /// lane. Returns whether any lane is active afterwards.
    fn refill(
        &mut self,
        claim: &mut dyn FnMut() -> Option<usize>,
        batch: &BatchConfig,
        quarantine: Option<&Quarantine>,
        interrupt: Option<&AtomicBool>,
        emit: &mut dyn FnMut(usize, EpisodeOutcome),
    ) -> bool {
        for lane in self.lanes.iter_mut() {
            if lane.active {
                continue;
            }
            while let Some(i) = claim() {
                let cfg = batch.episode(i);
                if interrupt.is_some_and(|f| f.load(Ordering::Relaxed)) {
                    emit(
                        i,
                        EpisodeOutcome::Skipped {
                            seed: cfg.seed,
                            reason: SkipReason::Interrupted,
                        },
                    );
                    continue;
                }
                if let Some(panics) = quarantine.and_then(|q| q.is_quarantined(cfg.seed)) {
                    emit(
                        i,
                        EpisodeOutcome::Skipped {
                            seed: cfg.seed,
                            reason: SkipReason::Quarantined { panics },
                        },
                    );
                    continue;
                }
                // AssertUnwindSafe: the stepper is rebuilt wholesale on the
                // panic path, so no torn state survives the catch.
                match catch_unwind(AssertUnwindSafe(|| lane.stepper.start(&cfg))) {
                    Ok(Ok(())) => {
                        lane.index = i;
                        lane.seed = cfg.seed;
                        lane.active = true;
                        lane.waiting = false;
                        break;
                    }
                    Ok(Err(error)) => {
                        emit(
                            i,
                            EpisodeOutcome::Failed {
                                seed: cfg.seed,
                                error,
                            },
                        );
                    }
                    Err(payload) => {
                        if let Some(q) = quarantine {
                            q.record_panic(cfg.seed);
                        }
                        emit(
                            i,
                            EpisodeOutcome::Panicked {
                                seed: cfg.seed,
                                payload: payload_string(payload.as_ref()),
                            },
                        );
                        lane.stepper.rebuild();
                    }
                }
            }
        }
        self.lanes.iter().any(|l| l.active)
    }

    /// One lockstep round: resume every lane parked on the previous
    /// round's forward results, advance each active lane to its next
    /// deferred NN step (or to completion), then answer the newly deferred
    /// evaluations with one batched forward — consumed at the start of the
    /// next round.
    ///
    /// Panic isolation is per *sweep*, not per lane-advance: one
    /// `catch_unwind` wraps the whole advance loop, with the lane currently
    /// in flight tracked so a caught panic retires exactly that lane and
    /// the sweep resumes at the next slot. Unwind-catch setup per lane-step
    /// was a measurable slice of the non-NN budget, and panics are
    /// exceptional — the slow path can afford the re-entry.
    fn round(
        &mut self,
        quarantine: Option<&Quarantine>,
        interrupt: Option<&AtomicBool>,
        emit: &mut dyn FnMut(usize, EpisodeOutcome),
    ) {
        let mut start = 0;
        while start < self.lanes.len() {
            let in_flight = Cell::new(start);
            let lanes = &mut self.lanes;
            let nn = &mut self.nn;
            let k = self.k;
            // AssertUnwindSafe: the panicking lane's stepper is rebuilt
            // wholesale below; no other lane is mid-mutation when one
            // lane's advance unwinds.
            let caught = catch_unwind(AssertUnwindSafe(|| {
                for (slot, lane) in lanes.iter_mut().enumerate().skip(start) {
                    if !lane.active {
                        continue;
                    }
                    in_flight.set(slot);
                    if k == 1 {
                        // Exact path: answer each deferred step inline
                        // through the per-sample kernel; a Lanes(1) batch
                        // is bit-identical to the per-episode path by
                        // construction.
                        let mut resume = None;
                        loop {
                            match lane.stepper.advance(resume, interrupt) {
                                StepAdvance::NeedsNn { obs } => {
                                    resume = Some(nn.solo_accel(&obs));
                                }
                                StepAdvance::Finished(result) => {
                                    lane.active = false;
                                    emit(lane.index, EpisodeOutcome::Completed(result));
                                    break;
                                }
                                StepAdvance::Interrupted => {
                                    lane.active = false;
                                    emit(
                                        lane.index,
                                        EpisodeOutcome::Skipped {
                                            seed: lane.seed,
                                            reason: SkipReason::Interrupted,
                                        },
                                    );
                                    break;
                                }
                            }
                        }
                        continue;
                    }
                    // A lane parked last round consumes its column of the
                    // forward results computed at the end of that round.
                    let resume = if lane.waiting {
                        lane.waiting = false;
                        Some(nn.accel(slot))
                    } else {
                        None
                    };
                    match lane.stepper.advance(resume, interrupt) {
                        StepAdvance::NeedsNn { obs } => {
                            nn.gather(slot, &obs);
                            lane.waiting = true;
                        }
                        StepAdvance::Finished(result) => {
                            lane.active = false;
                            emit(lane.index, EpisodeOutcome::Completed(result));
                        }
                        StepAdvance::Interrupted => {
                            lane.active = false;
                            emit(
                                lane.index,
                                EpisodeOutcome::Skipped {
                                    seed: lane.seed,
                                    reason: SkipReason::Interrupted,
                                },
                            );
                        }
                    }
                }
            }));
            match caught {
                Ok(()) => break,
                Err(payload) => {
                    let slot = in_flight.get();
                    let lane = &mut self.lanes[slot];
                    lane.active = false;
                    lane.waiting = false;
                    if let Some(q) = quarantine {
                        q.record_panic(lane.seed);
                    }
                    emit(
                        lane.index,
                        EpisodeOutcome::Panicked {
                            seed: lane.seed,
                            payload: payload_string(payload.as_ref()),
                        },
                    );
                    lane.stepper.rebuild();
                    start = slot + 1;
                }
            }
        }
        if !self.lanes.iter().any(|l| l.waiting) {
            return;
        }
        // Dead lanes carry zeros so the slab contents — and hence any
        // diagnostic dump of it — are a pure function of the waiting set.
        // Columns `k..LANE_WIDTH` are never gathered into, so they hold
        // their construction-time zeros for the life of the group.
        for slot in 0..self.k {
            if !self.lanes[slot].waiting {
                self.nn.clear_lane(slot);
            }
        }
        debug_assert!(
            (self.k..LANE_WIDTH).all(|s| (0..Observation::FEATURES).all(|r| self
                .nn
                .input
                .get(r, s)
                == 0.0))
        );
        // The results stay in the output slab; each waiting lane consumes
        // its column at the start of the next round's sweep, folding the
        // resume into that round's advance call.
        self.nn.forward();
    }
}

/// Drives one worker's [`LaneGroup`] until `claim` runs dry and every lane
/// retires. `emit` receives exactly one outcome per claimed index.
///
/// This is the building block [`run_batch_lanes`] fans out across workers;
/// it is public so external schedulers (e.g. the server's sharded worker
/// pool) can feed a lane group from their own claim queue while keeping
/// the same numeric contract. `claim` yields episode indices into `batch`;
/// `interrupt` is honoured at step granularity.
#[allow(clippy::too_many_arguments)] // the full fault-semantics surface of one worker
pub fn drive_lanes(
    claim: &mut dyn FnMut() -> Option<usize>,
    batch: &BatchConfig,
    spec: &StackSpec,
    planner: &NnPlanner,
    k: usize,
    quarantine: Option<&Quarantine>,
    interrupt: Option<&AtomicBool>,
    emit: &mut dyn FnMut(usize, EpisodeOutcome),
) {
    let mut group = LaneGroup::new(spec, planner, k);
    while group.refill(claim, batch, quarantine, interrupt, emit) {
        group.round(quarantine, interrupt, emit);
    }
}

/// Runs every episode of `batch` under supervision with lane batching:
/// each worker steps [`BatchMode::lanes`] episodes in lockstep and answers
/// their NN evaluations with one batched forward pass per round.
///
/// Fault semantics are identical to [`crate::run_batch_supervised`]
/// (typed per-episode outcomes, panic isolation, quarantine, step-granular
/// interruption). [`BatchMode::PerEpisode`] — and any stack without an
/// embedded NN planner, where lockstep has nothing to batch — delegates to
/// the per-episode path outright. Numerics follow the module-level
/// determinism/tolerance contract.
///
/// # Errors
///
/// [`SimError::InvalidBatch`] for an unrunnable batch configuration or a
/// lane count outside `1..=`[`LANE_WIDTH`].
pub fn run_batch_lanes(
    batch: &BatchConfig,
    spec: &StackSpec,
    mode: BatchMode,
    quarantine: Option<&Quarantine>,
    interrupt: Option<&AtomicBool>,
) -> Result<BatchReport, SimError> {
    batch.validate()?;
    mode.validate()?;
    let k = match mode {
        BatchMode::PerEpisode => return run_batch_supervised(batch, spec, quarantine, interrupt),
        BatchMode::EventDriven => {
            return run_batch_event_driven(batch, spec, quarantine, interrupt)
        }
        BatchMode::Lanes(k) => k,
    };
    let Some(planner) = spec.nn_planner() else {
        return run_batch_supervised(batch, spec, quarantine, interrupt);
    };

    let workers = batch.worker_count().max(1).min(batch.episodes);
    let mut slots: Vec<Option<EpisodeOutcome>> = Vec::new();
    slots.resize_with(batch.episodes, || None);

    if workers == 1 {
        let queue = WorkQueue::new(batch.episodes);
        drive_lanes(
            &mut || queue.claim(),
            batch,
            spec,
            planner,
            k,
            quarantine,
            interrupt,
            &mut |i, outcome| slots[i] = Some(outcome),
        );
    } else {
        let queue = WorkQueue::new(batch.episodes);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let queue = &queue;
                    scope.spawn(move || {
                        let mut local: Vec<(usize, EpisodeOutcome)> = Vec::new();
                        drive_lanes(
                            &mut || queue.claim(),
                            batch,
                            spec,
                            planner,
                            k,
                            quarantine,
                            interrupt,
                            &mut |i, outcome| local.push((i, outcome)),
                        );
                        local
                    })
                })
                .collect();
            for handle in handles {
                // As in the scheduler: a worker that dies between claiming
                // and reporting loses its buffer; the rescue below re-runs
                // those indices.
                if let Ok(local) = handle.join() {
                    for (i, outcome) in local {
                        slots[i] = Some(outcome);
                    }
                }
            }
        });
    }

    // Rescue pass: any index a dead worker never reported is re-run inline
    // through a fresh single-lane-at-a-time group of the same width, so
    // rescued episodes obey the same numeric contract as the rest.
    for i in 0..slots.len() {
        if slots[i].is_some() {
            continue;
        }
        let mut once = Some(i);
        drive_lanes(
            &mut || once.take(),
            batch,
            spec,
            planner,
            k,
            quarantine,
            interrupt,
            &mut |j, outcome| slots[j] = Some(outcome),
        );
    }

    Ok(BatchReport {
        outcomes: slots
            .into_iter()
            .map(|s| s.expect("every episode emitted exactly once"))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_nn::Activation;
    use cv_planner::FeatureScaling;

    fn nn_planner(seed: u64) -> NnPlanner {
        let net = Mlp::new(&[5, 16, 1], Activation::Tanh, Activation::Tanh, seed).unwrap();
        let limits = VehicleLimits::new(0.0, 12.0, -6.0, 3.0).unwrap();
        NnPlanner::new(net, limits, FeatureScaling::left_turn(), "lane-test")
    }

    fn nn_batch(episodes: usize, threads: usize) -> (BatchConfig, StackSpec) {
        let template = EpisodeConfig::paper_default(11);
        let spec = StackSpec::basic(nn_planner(3));
        let mut batch = BatchConfig::new(template, episodes);
        batch.threads = threads;
        (batch, spec)
    }

    #[test]
    fn mode_validation_rejects_bad_lane_counts() {
        assert!(BatchMode::Lanes(0).validate().is_err());
        assert!(BatchMode::Lanes(LANE_WIDTH + 1).validate().is_err());
        for k in 1..=LANE_WIDTH {
            assert!(BatchMode::Lanes(k).validate().is_ok());
        }
        assert_eq!(BatchMode::PerEpisode.lanes(), 1);
        assert_eq!(BatchMode::Lanes(4).lanes(), 4);
    }

    #[test]
    fn lanes_of_one_is_bit_identical_to_per_episode() {
        let (batch, spec) = nn_batch(10, 1);
        let reference = run_batch_supervised(&batch, &spec, None, None).unwrap();
        let lanes = run_batch_lanes(&batch, &spec, BatchMode::Lanes(1), None, None).unwrap();
        assert_eq!(reference, lanes, "Lanes(1) must be bit-identical");
        for (a, b) in reference.outcomes.iter().zip(&lanes.outcomes) {
            let (a, b) = (a.completed().unwrap(), b.completed().unwrap());
            assert_eq!(a.eta.to_bits(), b.eta.to_bits());
        }
    }

    #[test]
    fn lane_results_are_worker_and_group_invariant() {
        // The same batch over different worker counts (hence different racy
        // lane assignments) must produce identical outcomes.
        let (batch, spec) = nn_batch(12, 1);
        let serial = run_batch_lanes(&batch, &spec, BatchMode::Lanes(4), None, None).unwrap();
        for threads in [2, 3] {
            let mut b = batch.clone();
            b.threads = threads;
            let parallel = run_batch_lanes(&b, &spec, BatchMode::Lanes(4), None, None).unwrap();
            assert_eq!(serial, parallel, "{threads} workers diverged");
        }
    }

    #[test]
    fn batched_lanes_pass_the_tolerance_gate() {
        let (batch, spec) = nn_batch(10, 2);
        let reference = run_batch_supervised(&batch, &spec, None, None).unwrap();
        for k in [2, 4, 8] {
            let lanes = run_batch_lanes(&batch, &spec, BatchMode::Lanes(k), None, None).unwrap();
            for (i, (a, b)) in reference.outcomes.iter().zip(&lanes.outcomes).enumerate() {
                let (a, b) = (a.completed().unwrap(), b.completed().unwrap());
                lane_tolerance_check(a, b).unwrap_or_else(|e| panic!("K={k} episode {i}: {e}"));
            }
        }
    }

    #[test]
    fn teacher_specs_fall_back_to_the_per_episode_path() {
        let template = EpisodeConfig::paper_default(5);
        let spec = StackSpec::pure_teacher_conservative(&template).unwrap();
        let batch = BatchConfig::new(template, 6);
        let reference = run_batch_supervised(&batch, &spec, None, None).unwrap();
        let lanes = run_batch_lanes(&batch, &spec, BatchMode::Lanes(8), None, None).unwrap();
        assert_eq!(reference, lanes);
    }

    #[test]
    fn invalid_episode_is_contained_and_lanes_refill_past_it() {
        // One unreachable start position fails its episodes; surviving
        // episodes still complete and match the per-episode reference gate.
        let (mut batch, spec) = nn_batch(8, 1);
        batch.starts = vec![batch.starts[0], 10.0];
        let reference = run_batch_supervised(&batch, &spec, None, None).unwrap();
        let lanes = run_batch_lanes(&batch, &spec, BatchMode::Lanes(4), None, None).unwrap();
        let summary = lanes.summary();
        assert_eq!((summary.requested, summary.failed), (8, 4));
        for (i, (a, b)) in reference.outcomes.iter().zip(&lanes.outcomes).enumerate() {
            match (a, b) {
                (EpisodeOutcome::Completed(a), EpisodeOutcome::Completed(b)) => {
                    lane_tolerance_check(a, b).unwrap_or_else(|e| panic!("episode {i}: {e}"));
                }
                (
                    EpisodeOutcome::Failed { seed: sa, .. },
                    EpisodeOutcome::Failed { seed: sb, .. },
                ) => {
                    assert_eq!(sa, sb);
                }
                other => panic!("episode {i} outcome shape diverged: {other:?}"),
            }
        }
    }

    #[test]
    fn interrupt_set_up_front_skips_everything() {
        let (batch, spec) = nn_batch(6, 1);
        let stop = AtomicBool::new(true);
        let report =
            run_batch_lanes(&batch, &spec, BatchMode::Lanes(4), None, Some(&stop)).unwrap();
        assert_eq!(report.completed(), 0);
        assert!(report.outcomes.iter().all(|o| matches!(
            o,
            EpisodeOutcome::Skipped {
                reason: SkipReason::Interrupted,
                ..
            }
        )));
    }

    #[test]
    fn tolerance_gate_rejects_real_divergence() {
        let good = EpisodeResult {
            outcome: Outcome::Reached { time: 8.0 },
            eta: 0.125,
            emergency_steps: 3,
            total_steps: 160,
            collided_pair: None,
            traces: None,
        };
        assert!(lane_tolerance_check(&good, &good).is_ok());
        let mut shifted = good.clone();
        shifted.outcome = Outcome::Reached { time: 8.05 };
        shifted.total_steps = 161;
        assert!(lane_tolerance_check(&good, &shifted).is_ok());
        let mut wrong_kind = good.clone();
        wrong_kind.outcome = Outcome::Collision { time: 8.0 };
        assert!(lane_tolerance_check(&good, &wrong_kind).is_err());
        let mut late = good.clone();
        late.outcome = Outcome::Reached { time: 9.0 };
        assert!(lane_tolerance_check(&good, &late).is_err());
        let mut drifted = good.clone();
        drifted.eta = 0.2;
        assert!(lane_tolerance_check(&good, &drifted).is_err());
        let mut steps = good.clone();
        steps.total_steps = 170;
        assert!(lane_tolerance_check(&good, &steps).is_err());
    }
}
