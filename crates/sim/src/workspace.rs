//! Per-worker reusable episode state.
//!
//! Building an episode from scratch allocates scenario geometry, boxed
//! communication channels, boxed estimators, and a planner clone (for an NN
//! stack: every weight matrix). A batch worker runs thousands of episodes
//! with the *same* stack and a handful of distinct geometries, so
//! [`EpisodeWorkspace`] keeps all of that alive across episodes:
//!
//! - scenario lists are cached per geometry (`Δt_c` + every vehicle's start
//!   position fully determine them);
//! - channels are re-armed via [`Channel::reset`] (bit-identical to a fresh
//!   channel — see the `cv-comm` tests) instead of re-boxed;
//! - sensors, drivers, and vehicle-state buffers are refilled in place
//!   (their elements are heap-free);
//! - the [`StackSpec`]'s executor is re-armed via `StackSpec::reinit`, so
//!   the planner is cloned exactly once per worker;
//! - the message inbox is drained through [`Channel::receive_into`] into a
//!   retained buffer.
//!
//! Together with the scratch buffers inside the planner stack — including
//! the `MlpScratch` each `NnPlanner` carries for allocation-free inference
//! (`DESIGN.md` §13) — this makes the per-*step* simulation loop
//! allocation-free in the steady state; `tests/alloc_guard.rs` in the root
//! crate proves it with a counting allocator. Results are bit-identical to
//! the build-from-scratch path; `tests/scheduler_determinism.rs` enforces
//! that.

use cv_comm::{Channel, CommSetting, Message};
use cv_dynamics::VehicleState;
use cv_sensing::UniformNoiseSensor;
use left_turn::LeftTurnScenario;

use crate::driver::Driver;
use crate::events::EventScratch;
use crate::stack::StackExec;
use crate::{DriverModel, EpisodeConfig, SimError, StackSpec};

/// A communication channel kept for reuse, remembering which setting built
/// it so a template change (e.g. a comm-scenario sweep) rebuilds instead of
/// mis-resetting.
pub(crate) struct ChannelSlot {
    pub(crate) setting: CommSetting,
    pub(crate) chan: Box<dyn Channel + Send>,
}

/// Upper bound on cached geometries; far above the paper's 20-start grid,
/// and a sweep over more geometries than this simply re-derives them.
const MAX_CACHED_GEOMETRIES: usize = 64;

/// Reusable per-worker state for running episodes of one [`StackSpec`].
///
/// See the module docs for what is retained. The workspace is bound to its
/// spec at construction: the executor it reuses embeds that spec's planner,
/// so running a different spec requires a different workspace.
///
/// # Example
///
/// ```
/// use cv_sim::{EpisodeConfig, EpisodeWorkspace, StackSpec};
///
/// let cfg = EpisodeConfig::paper_default(0);
/// let spec = StackSpec::pure_teacher_conservative(&cfg)?;
/// let mut ws = EpisodeWorkspace::new(spec);
/// let first = ws.run(&cfg, false)?;
/// let again = ws.run(&cfg, false)?; // reuses buffers, identical result
/// assert_eq!(first, again);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct EpisodeWorkspace {
    pub(crate) spec: StackSpec,
    /// Built on first use, re-armed (not rebuilt) on every later episode.
    pub(crate) exec: Option<StackExec>,
    /// Geometry-keyed scenario cache; the key is the bit pattern of `Δt_c`
    /// followed by every vehicle's start position.
    pub(crate) scenario_cache: Vec<(Vec<u64>, Vec<LeftTurnScenario>)>,
    key_scratch: Vec<u64>,
    pub(crate) channels: Vec<ChannelSlot>,
    pub(crate) sensors: Vec<UniformNoiseSensor>,
    pub(crate) drivers: Vec<Driver>,
    pub(crate) others: Vec<VehicleState>,
    pub(crate) inbox: Vec<Message>,
    /// Event-engine scratch (heap, retirement flags), reused across
    /// episodes; inert for the fixed-step engines.
    pub(crate) events: EventScratch,
}

/// `(start_shared, init_speed, driver)` of conflicting vehicle `i` without
/// materialising [`EpisodeConfig::vehicles`].
pub(crate) fn vehicle(cfg: &EpisodeConfig, i: usize) -> (f64, f64, DriverModel) {
    if i == 0 {
        (cfg.other_start_shared, cfg.other_init_speed, cfg.driver)
    } else {
        let e = &cfg.extra_others[i - 1];
        (e.start_shared, e.init_speed, e.driver)
    }
}

impl EpisodeWorkspace {
    /// A workspace bound to `spec`. No heavy state is built until the first
    /// [`EpisodeWorkspace::run`].
    pub fn new(spec: StackSpec) -> Self {
        Self {
            spec,
            exec: None,
            scenario_cache: Vec::new(),
            key_scratch: Vec::new(),
            channels: Vec::new(),
            sensors: Vec::new(),
            drivers: Vec::new(),
            others: Vec::new(),
            inbox: Vec::new(),
            events: EventScratch::default(),
        }
    }

    /// The stack this workspace runs.
    pub fn spec(&self) -> &StackSpec {
        &self.spec
    }

    /// Index into the scenario cache for `cfg`'s geometry, building (and
    /// validating) the scenario list on a cache miss.
    pub(crate) fn scenario_slot(&mut self, cfg: &EpisodeConfig) -> Result<usize, SimError> {
        self.key_scratch.clear();
        self.key_scratch.push(cfg.dt_c.to_bits());
        self.key_scratch.push(cfg.other_start_shared.to_bits());
        self.key_scratch
            .extend(cfg.extra_others.iter().map(|e| e.start_shared.to_bits()));
        if let Some(pos) = self
            .scenario_cache
            .iter()
            .position(|(k, _)| *k == self.key_scratch)
        {
            return Ok(pos);
        }
        let scenarios = cfg.scenarios()?;
        if self.scenario_cache.len() >= MAX_CACHED_GEOMETRIES {
            self.scenario_cache.clear();
        }
        self.scenario_cache
            .push((self.key_scratch.clone(), scenarios));
        Ok(self.scenario_cache.len() - 1)
    }

    /// The cached scenario list at `slot`.
    pub(crate) fn cached_scenarios(&self, slot: usize) -> &[LeftTurnScenario] {
        &self.scenario_cache[slot].1
    }

    /// Re-arms channels, sensors, drivers, and vehicle states for `cfg`
    /// (`n` conflicting vehicles), reusing every buffer.
    pub(crate) fn arm_vehicles(
        &mut self,
        cfg: &EpisodeConfig,
        other_limits: cv_dynamics::VehicleLimits,
    ) {
        let n = 1 + cfg.extra_others.len();
        self.others.clear();
        self.others
            .extend((0..n).map(|i| VehicleState::new(0.0, vehicle(cfg, i).1, 0.0)));

        // Every vehicle pair carries its own channel; a per-vehicle
        // override (platoons) re-arms only that slot's setting.
        self.channels.truncate(n);
        for (i, slot) in self.channels.iter_mut().enumerate() {
            let comm = cfg.effective_comm(i);
            let seed = cfg.seed_channel_for(i);
            if slot.setting == comm {
                slot.chan.reset(seed);
            } else {
                slot.setting = comm;
                slot.chan = comm.channel(seed);
            }
        }
        for i in self.channels.len()..n {
            let comm = cfg.effective_comm(i);
            self.channels.push(ChannelSlot {
                setting: comm,
                chan: comm.channel(cfg.seed_channel_for(i)),
            });
        }

        self.sensors.clear();
        self.sensors.extend((0..n).map(|i| {
            UniformNoiseSensor::new(cfg.noise, cfg.seed_sensor_for(i))
                .with_dropout(cfg.sensor_dropout)
        }));

        self.drivers.clear();
        self.drivers.extend((0..n).map(|i| {
            vehicle(cfg, i)
                .2
                .driver(other_limits, cfg.seed_driving_for(i))
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_cache_hits_on_repeated_geometry() {
        let cfg = EpisodeConfig::paper_default(0);
        let spec = StackSpec::pure_teacher_conservative(&cfg).unwrap();
        let mut ws = EpisodeWorkspace::new(spec);
        let a = ws.scenario_slot(&cfg).unwrap();
        let b = ws.scenario_slot(&cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(ws.scenario_cache.len(), 1);

        let mut moved = cfg.clone();
        moved.other_start_shared = 55.0;
        let c = ws.scenario_slot(&moved).unwrap();
        assert_ne!(a, c);
        assert_eq!(ws.scenario_cache.len(), 2);
    }

    #[test]
    fn scenario_cache_is_bounded() {
        let cfg = EpisodeConfig::paper_default(0);
        let spec = StackSpec::pure_teacher_conservative(&cfg).unwrap();
        let mut ws = EpisodeWorkspace::new(spec);
        for j in 0..(2 * MAX_CACHED_GEOMETRIES) {
            let mut c = cfg.clone();
            c.other_start_shared = 50.5 + 0.01 * j as f64;
            ws.scenario_slot(&c).unwrap();
        }
        assert!(ws.scenario_cache.len() <= MAX_CACHED_GEOMETRIES);
    }

    #[test]
    fn invalid_geometry_is_not_cached() {
        let mut cfg = EpisodeConfig::paper_default(0);
        cfg.other_start_shared = -1.0; // inside / behind the zone
        let spec = StackSpec::PureTeacher {
            policy: cv_planner::TeacherPolicy::conservative(
                &EpisodeConfig::paper_default(0).scenario().unwrap(),
            ),
            window: crate::WindowKind::Conservative,
        };
        let mut ws = EpisodeWorkspace::new(spec);
        assert!(ws.scenario_slot(&cfg).is_err());
        assert!(ws.scenario_cache.is_empty());
    }
}
