//! Work-stealing batch scheduler shared by [`crate::run_batch`] and the
//! cv-server worker pool.
//!
//! Episode lengths vary wildly — a collision or a reached target ends an
//! episode after a fraction of the horizon — so splitting a batch into
//! contiguous per-worker ranges leaves tail workers idle while one worker
//! grinds through an unlucky chunk. Here every worker instead claims the
//! next unclaimed episode index from a shared atomic counter ([`WorkQueue`]),
//! so the makespan is bounded by the mean episode cost plus *one* straggler
//! rather than the most expensive contiguous chunk.
//!
//! Determinism is unaffected: the index a worker claims fully determines the
//! episode (seed, start position), results are written back by index, and
//! every per-episode RNG stream is derived from the episode seed — so the
//! result vector is bit-identical to a serial run regardless of worker count
//! or claim interleaving.

use std::sync::atomic::{AtomicUsize, Ordering};

/// A shared claim-by-index work queue over `0..total`.
///
/// `claim` hands out each index exactly once, in ascending order of claim
/// time; which worker gets which index is racy by design, the set of indices
/// is not.
#[derive(Debug)]
pub struct WorkQueue {
    next: AtomicUsize,
    total: usize,
}

impl WorkQueue {
    /// A queue over the indices `0..total`.
    pub fn new(total: usize) -> Self {
        Self {
            next: AtomicUsize::new(0),
            total,
        }
    }

    /// Claims the next unclaimed index, or `None` when the queue is drained.
    pub fn claim(&self) -> Option<usize> {
        // Relaxed suffices: the counter is the only shared state and the
        // claimed index is consumed by the claiming thread alone.
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        (i < self.total).then_some(i)
    }

    /// Number of indices in the queue (claimed or not).
    pub fn total(&self) -> usize {
        self.total
    }
}

/// Runs `job(state, index)` for every `index ∈ 0..total` across `workers`
/// threads with dynamic load balancing, returning the results in index
/// order.
///
/// `init` builds one worker-local state (e.g. an episode workspace) per
/// thread; with `workers <= 1` everything runs on the calling thread with a
/// single state and no thread is spawned.
pub fn for_each_dynamic<T, S, I, F>(total: usize, workers: usize, init: I, job: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if total == 0 {
        return Vec::new();
    }
    let workers = workers.max(1).min(total);
    if workers == 1 {
        let mut state = init();
        return (0..total).map(|i| job(&mut state, i)).collect();
    }

    let queue = WorkQueue::new(total);
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(total, || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let queue = &queue;
                let init = &init;
                let job = &job;
                scope.spawn(move || {
                    let mut state = init();
                    let mut local: Vec<(usize, T)> = Vec::new();
                    while let Some(i) = queue.claim() {
                        local.push((i, job(&mut state, i)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            // A worker that died between claiming indices and reporting its
            // buffer loses the whole buffer; those indices stay `None` and
            // the rescue pass below re-runs them. Swallowing the join error
            // here is what keeps one dead shard from poisoning the scope.
            if let Ok(local) = handle.join() {
                for (i, value) in local {
                    slots[i] = Some(value);
                }
            }
        }
    });
    // Supervisor rescue: every unfilled slot belonged to a dead worker.
    // Re-run them inline on one fresh state — the index alone determines
    // the work, so the rescued results are identical to what the dead
    // worker would have produced.
    let mut rescue: Option<S> = None;
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| job(rescue.get_or_insert_with(&init), i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_hands_out_each_index_once() {
        let q = WorkQueue::new(5);
        let claimed: Vec<usize> = std::iter::from_fn(|| q.claim()).collect();
        assert_eq!(claimed, vec![0, 1, 2, 3, 4]);
        assert_eq!(q.claim(), None);
        assert_eq!(q.total(), 5);
    }

    #[test]
    fn results_are_in_index_order_for_any_worker_count() {
        for workers in [1, 2, 3, 8, 64] {
            let out = for_each_dynamic(33, workers, || (), |(), i| i * i);
            assert_eq!(
                out,
                (0..33).map(|i| i * i).collect::<Vec<_>>(),
                "{workers} workers"
            );
        }
    }

    #[test]
    fn worker_state_is_reused_within_a_worker() {
        // Serial path: a single state sees every index.
        let out = for_each_dynamic(
            4,
            1,
            || 0usize,
            |calls, _| {
                *calls += 1;
                *calls
            },
        );
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_queue_spawns_nothing() {
        let out: Vec<usize> = for_each_dynamic(0, 8, || (), |(), i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn dead_worker_indices_are_rescued_by_the_coordinator() {
        use std::sync::atomic::AtomicBool;
        // The first worker to claim index 3 dies on the spot (losing its
        // whole local buffer); the coordinator's rescue pass must re-run
        // everything that worker never reported — including index 3 itself,
        // which succeeds on the second attempt.
        let armed = AtomicBool::new(true);
        let out = for_each_dynamic(
            16,
            4,
            || (),
            |(), i| {
                if i == 3 && armed.swap(false, Ordering::Relaxed) {
                    panic!("injected worker death");
                }
                i * 10
            },
        );
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_loads_still_cover_everything() {
        // Simulated early exits: some "episodes" cost 100x others.
        let out = for_each_dynamic(
            64,
            4,
            || (),
            |(), i| {
                let spins = if i % 7 == 0 { 10_000 } else { 100 };
                (0..spins).map(std::hint::black_box).sum::<usize>();
                i
            },
        );
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }
}
