use cv_dynamics::VehicleState;
use cv_estimation::{
    Estimator, FilterMode, InformationFilter, Interval, NaiveEstimator, Prior, VehicleEstimate,
};
use cv_planner::{NnPlanner, TeacherPolicy};
use left_turn::{LeftTurnScenario, ScenarioError};
use safe_shield::{
    merge_windows_in_place, AggressiveConfig, MultiCompoundPlanner, Observation, PlanDecision,
    Planner, PlannerSource, Scenario, WindowSource, DEFAULT_MERGE_GAP,
};

use crate::EpisodeConfig;

/// Which passing-time window an *unshielded* planner is fed.
///
/// The conservative planner family was trained on (and deploys with) sound
/// Eq. 7 windows; the aggressive family uses the optimistic constant-speed
/// window. Inside a compound planner this choice is superseded by
/// [`safe_shield::WindowSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowKind {
    /// Paper Eq. 7 with physical limits.
    Conservative,
    /// Constant-current-speed projection (optimistic, unsound).
    Nominal,
}

/// One of the planner configurations compared in the paper's tables.
///
/// `PureNn`/`PureTeacher` run *unshielded* with naive estimation — the
/// baselines. `Basic` is `κ_cb` (runtime monitor + emergency planner over
/// sound hard-interval estimation). `Ultimate` is `κ_cu` (adds the Kalman
/// information filter and the aggressive unsafe set).
#[derive(Debug, Clone)]
pub enum StackSpec {
    /// An unshielded NN planner with naive estimation.
    PureNn {
        /// The trained planner.
        planner: NnPlanner,
        /// Window flavour it was trained with.
        window: WindowKind,
    },
    /// An unshielded analytic teacher (interpretable baseline).
    PureTeacher {
        /// The policy.
        policy: TeacherPolicy,
        /// Window flavour it consumes.
        window: WindowKind,
    },
    /// Test-only planner for the supervised execution layer: behaves
    /// exactly like the conservative [`StackSpec::PureTeacher`], except
    /// that an episode whose seed is listed in `panic_seeds` panics before
    /// its first step. Gated behind the `fault-injection` feature so it can
    /// never ship in a default build.
    #[cfg(feature = "fault-injection")]
    PanicInjection {
        /// The underlying (conservative-teacher) policy.
        policy: TeacherPolicy,
        /// Window flavour it consumes.
        window: WindowKind,
        /// Episode seeds that trigger an injected panic.
        panic_seeds: Vec<u64>,
    },
    /// A compound planner with an explicit estimator/window configuration.
    /// Use [`StackSpec::basic`] / [`StackSpec::ultimate`] for the paper's
    /// two variants; other combinations serve the ablation experiments.
    Compound {
        /// The embedded NN planner.
        planner: NnPlanner,
        /// Which estimator feeds the monitor and the NN.
        filter_mode: FilterMode,
        /// Which window the NN sees.
        window_source: WindowSource,
    },
}

impl StackSpec {
    /// The basic compound planner `κ_cb`: monitor + emergency planner over
    /// hard-interval estimation, conservative window for the NN.
    pub fn basic(planner: NnPlanner) -> Self {
        StackSpec::Compound {
            planner,
            filter_mode: FilterMode::HardOnly,
            window_source: WindowSource::Conservative,
        }
    }

    /// The ultimate compound planner `κ_cu`: adds the Kalman information
    /// filter and feeds the NN the aggressive (Eq. 8) window.
    pub fn ultimate(planner: NnPlanner, aggressive: AggressiveConfig) -> Self {
        StackSpec::Compound {
            planner,
            filter_mode: FilterMode::Fused,
            window_source: WindowSource::Aggressive(aggressive),
        }
    }

    /// Unshielded conservative teacher baseline for `cfg`'s scenario.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if the episode geometry is invalid.
    pub fn pure_teacher_conservative(cfg: &EpisodeConfig) -> Result<Self, ScenarioError> {
        Ok(StackSpec::PureTeacher {
            policy: TeacherPolicy::conservative(&cfg.scenario()?),
            window: WindowKind::Conservative,
        })
    }

    /// Unshielded aggressive teacher baseline for `cfg`'s scenario.
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if the episode geometry is invalid.
    pub fn pure_teacher_aggressive(cfg: &EpisodeConfig) -> Result<Self, ScenarioError> {
        Ok(StackSpec::PureTeacher {
            policy: TeacherPolicy::aggressive(&cfg.scenario()?),
            window: WindowKind::Nominal,
        })
    }

    /// The conservative teacher with an injected panic on the listed
    /// episode seeds — the deliberately faulty planner used to test panic
    /// isolation. The panic fires inside the episode loop, before the first
    /// step; every non-listed seed is bit-identical to
    /// [`StackSpec::pure_teacher_conservative`].
    ///
    /// # Errors
    ///
    /// Returns a [`ScenarioError`] if the episode geometry is invalid.
    #[cfg(feature = "fault-injection")]
    pub fn panic_injection(
        cfg: &EpisodeConfig,
        panic_seeds: Vec<u64>,
    ) -> Result<Self, ScenarioError> {
        Ok(StackSpec::PanicInjection {
            policy: TeacherPolicy::conservative(&cfg.scenario()?),
            window: WindowKind::Conservative,
            panic_seeds,
        })
    }

    /// Display name matching the paper's tables.
    pub fn label(&self) -> &'static str {
        match self {
            StackSpec::PureNn { .. } => "pure NN",
            StackSpec::PureTeacher { .. } => "pure teacher",
            #[cfg(feature = "fault-injection")]
            StackSpec::PanicInjection { .. } => "panic-injection",
            StackSpec::Compound {
                filter_mode: FilterMode::HardOnly,
                window_source: WindowSource::Conservative,
                ..
            } => "basic",
            StackSpec::Compound {
                filter_mode: FilterMode::Fused,
                window_source: WindowSource::Aggressive(_),
                ..
            } => "ultimate",
            StackSpec::Compound { .. } => "compound",
        }
    }

    /// The NN planner embedded in this spec, when there is one. The
    /// lane-batched executor uses this to clone the network (and its
    /// scaling/limits) into the group's batched evaluator; teacher stacks
    /// return `None` and run per-episode.
    pub fn nn_planner(&self) -> Option<&NnPlanner> {
        match self {
            StackSpec::PureNn { planner, .. } | StackSpec::Compound { planner, .. } => {
                Some(planner)
            }
            StackSpec::PureTeacher { .. } => None,
            #[cfg(feature = "fault-injection")]
            StackSpec::PanicInjection { .. } => None,
        }
    }

    /// Builds the per-episode executor (estimator + planner pipeline), one
    /// estimator per conflicting vehicle.
    ///
    /// The planner is cloned here — once. Reuse the executor across episodes
    /// with [`StackSpec::reinit`] to avoid re-cloning NN weight matrices per
    /// episode.
    pub(crate) fn build(&self, cfg: &EpisodeConfig, scenarios: &[LeftTurnScenario]) -> StackExec {
        let inits: Vec<VehicleState> = cfg
            .vehicles()
            .iter()
            .map(|(_, speed, _)| VehicleState::new(0.0, *speed, 0.0))
            .collect();
        let kind = match self {
            StackSpec::PureNn { planner, window } => ExecKind::Pure {
                planner: Box::new(planner.clone()),
                estimators: Vec::new(),
                window: *window,
                scenarios: scenarios.to_vec(),
                is_nn: true,
            },
            StackSpec::PureTeacher { policy, window } => ExecKind::Pure {
                planner: Box::new(*policy),
                estimators: Vec::new(),
                window: *window,
                scenarios: scenarios.to_vec(),
                is_nn: false,
            },
            // The injected panic lives in the episode loop, not the
            // executor: the executor is the plain teacher.
            #[cfg(feature = "fault-injection")]
            StackSpec::PanicInjection { policy, window, .. } => ExecKind::Pure {
                planner: Box::new(*policy),
                estimators: Vec::new(),
                window: *window,
                scenarios: scenarios.to_vec(),
                is_nn: false,
            },
            StackSpec::Compound {
                planner,
                window_source,
                ..
            } => ExecKind::Compound {
                compound: MultiCompoundPlanner::new(
                    scenarios.to_vec(),
                    Box::new(planner.clone()) as Box<dyn Planner + Send>,
                    *window_source,
                ),
                estimators: Vec::new(),
            },
        };
        let mut exec = StackExec {
            kind,
            est_scratch: Vec::with_capacity(inits.len()),
            win_scratch: Vec::with_capacity(inits.len()),
            frozen: Vec::new(),
        };
        self.reinit(&mut exec, cfg, scenarios, &inits);
        exec
    }

    /// Re-arms an executor previously built from **this same spec** for a
    /// fresh episode: estimators are rebuilt from the episode's initial
    /// states, the planner is reset in place (NN weights are *not*
    /// re-cloned), and the compound planner's scenario list is refreshed.
    ///
    /// Equivalent to [`StackSpec::build`] over the same inputs.
    pub(crate) fn reinit(
        &self,
        exec: &mut StackExec,
        cfg: &EpisodeConfig,
        scenarios: &[LeftTurnScenario],
        inits: &[VehicleState],
    ) {
        // Normalise the fault-injection wrapper to the teacher it embeds so
        // the shape match below stays exhaustive over real stacks.
        #[cfg(feature = "fault-injection")]
        if let StackSpec::PanicInjection { policy, window, .. } = self {
            let teacher = StackSpec::PureTeacher {
                policy: *policy,
                window: *window,
            };
            return teacher.reinit(exec, cfg, scenarios, inits);
        }
        exec.frozen.clear();
        let other_limits = scenarios[0].other_limits();
        match (&mut exec.kind, self) {
            (
                ExecKind::Pure {
                    planner,
                    estimators,
                    scenarios: exec_scenarios,
                    ..
                },
                StackSpec::PureNn { .. } | StackSpec::PureTeacher { .. },
            ) => {
                planner.reset();
                estimators.clear();
                estimators.extend(inits.iter().map(|init| {
                    Box::new(NaiveEstimator::new(other_limits, 0.0, *init))
                        as Box<dyn Estimator + Send>
                }));
                exec_scenarios.clear();
                exec_scenarios.extend_from_slice(scenarios);
            }
            (
                ExecKind::Compound {
                    compound,
                    estimators,
                },
                StackSpec::Compound { filter_mode, .. },
            ) => {
                compound.reinit(scenarios);
                estimators.clear();
                estimators.extend(inits.iter().map(|init| {
                    Box::new(InformationFilter::new(
                        other_limits,
                        cfg.noise,
                        *filter_mode,
                        Prior::exact(0.0, init.position, init.velocity),
                    )) as Box<dyn Estimator + Send>
                }));
            }
            _ => unreachable!("executor was built from a different StackSpec shape"),
        }
    }
}

/// Per-episode executor: owns the estimators and the planner pipeline, plus
/// per-step scratch buffers so [`StackExec::plan`] performs no heap
/// allocation in the steady state.
pub(crate) struct StackExec {
    kind: ExecKind,
    /// One estimate per conflicting vehicle, refilled each step.
    est_scratch: Vec<VehicleEstimate>,
    /// Window cluster buffer for the unshielded merge, refilled each step.
    win_scratch: Vec<Interval>,
    /// Event-engine pins: a `Some(est)` here overrides estimator `i`'s live
    /// estimate with a snapshot taken when the engine retired its vehicle
    /// (see `crate::events`). Empty in fixed-step operation, where every
    /// estimate is always recomputed.
    frozen: Vec<Option<VehicleEstimate>>,
}

/// Fills `out` with one estimate per vehicle, honouring frozen pins.
///
/// The single estimate-gathering path for both engines: with no pins armed
/// (`frozen` empty) this is exactly the fixed-step refill; with pins, a
/// retired vehicle's snapshot substitutes for its estimator query.
fn fill_estimates(
    out: &mut Vec<VehicleEstimate>,
    frozen: &[Option<VehicleEstimate>],
    estimators: &[Box<dyn Estimator + Send>],
    time: f64,
) {
    out.clear();
    if frozen.is_empty() {
        out.extend(estimators.iter().map(|e| e.estimate(time)));
    } else {
        out.extend(
            estimators
                .iter()
                .zip(frozen)
                .map(|(e, f)| f.unwrap_or_else(|| e.estimate(time))),
        );
    }
}

/// Fills `out` with the per-vehicle passing-time windows, skipping frozen
/// pins.
///
/// A pin is only armed once both the estimate interval's lower bound and
/// its nominal position sit past the scenario exit (`crate::events`
/// retirement probe), and `v_min > 0` keeps any forward projection there —
/// so the pinned estimate's window is `None` on every later step, in both
/// window kinds. Skipping the computation therefore yields exactly the set
/// the fixed-step engine's live estimates produce; it just stops paying
/// for windows that are known-`None`.
fn fill_windows(
    out: &mut Vec<Interval>,
    frozen: &[Option<VehicleEstimate>],
    scenarios: &[LeftTurnScenario],
    ests: &[VehicleEstimate],
    window: WindowKind,
    time: f64,
) {
    out.clear();
    out.extend(
        scenarios
            .iter()
            .zip(ests)
            .enumerate()
            .filter_map(|(i, (s, e))| {
                if frozen.get(i).is_some_and(|f| f.is_some()) {
                    return None;
                }
                match window {
                    WindowKind::Conservative => s.conservative_window(time, e),
                    WindowKind::Nominal => s.nominal_window(time, e),
                }
            }),
    );
}

enum ExecKind {
    Pure {
        planner: Box<dyn Planner + Send>,
        estimators: Vec<Box<dyn Estimator + Send>>,
        window: WindowKind,
        scenarios: Vec<LeftTurnScenario>,
        /// Whether `planner` is an NN whose evaluation can be deferred to a
        /// batched kernel ([`StackExec::plan_prepare`]).
        is_nn: bool,
    },
    Compound {
        compound: MultiCompoundPlanner<LeftTurnScenario, Box<dyn Planner + Send>>,
        estimators: Vec<Box<dyn Estimator + Send>>,
    },
}

/// Decision phase of one control step with the NN evaluation deferred —
/// the per-episode half of the lane-batched execution split.
pub(crate) enum StepPlan {
    /// The step is fully decided (teacher stacks, or a compound stack whose
    /// monitor escalated to the emergency planner).
    Ready(PlanDecision),
    /// The embedded NN must be evaluated on `obs`; its mapped output
    /// completes the step with [`PlannerSource::NeuralNetwork`].
    Nn {
        /// The fused observation the NN consumes.
        obs: Observation,
    },
}

impl StackExec {
    /// Arms the frozen-pin slots for `n` conflicting vehicles (event engine
    /// only); all slots start live. Fixed-step engines never call this, so
    /// their estimate path stays the plain refill.
    pub(crate) fn arm_frozen(&mut self, n: usize) {
        self.frozen.clear();
        self.frozen.resize(n, None);
    }

    /// Pins vehicle `i`'s estimate to `est` for the rest of the episode.
    pub(crate) fn set_frozen(&mut self, i: usize, est: VehicleEstimate) {
        self.frozen[i] = Some(est);
    }

    /// The estimator tracking conflicting vehicle `i`.
    pub(crate) fn estimator_mut(&mut self, i: usize) -> &mut (dyn Estimator + Send) {
        match &mut self.kind {
            ExecKind::Pure { estimators, .. } => estimators[i].as_mut(),
            ExecKind::Compound { estimators, .. } => estimators[i].as_mut(),
        }
    }

    /// Plans one step; returns the decision and the primary vehicle's
    /// estimate (for tracing).
    pub(crate) fn plan(
        &mut self,
        time: f64,
        ego: &VehicleState,
    ) -> (PlanDecision, VehicleEstimate) {
        match &mut self.kind {
            ExecKind::Pure {
                planner,
                estimators,
                window,
                scenarios,
                ..
            } => {
                fill_estimates(&mut self.est_scratch, &self.frozen, estimators, time);
                fill_windows(
                    &mut self.win_scratch,
                    &self.frozen,
                    scenarios,
                    &self.est_scratch,
                    *window,
                    time,
                );
                let fused = merge_windows_in_place(&mut self.win_scratch, DEFAULT_MERGE_GAP);
                let obs = Observation::new(time, *ego, fused);
                (
                    PlanDecision {
                        accel: planner.plan(&obs),
                        source: PlannerSource::NeuralNetwork,
                    },
                    self.est_scratch[0],
                )
            }
            ExecKind::Compound {
                compound,
                estimators,
            } => {
                fill_estimates(&mut self.est_scratch, &self.frozen, estimators, time);
                let decision = compound.plan(time, ego, &self.est_scratch);
                (decision, self.est_scratch[0])
            }
        }
    }

    /// Like [`StackExec::plan`], but with any NN evaluation deferred: runs
    /// estimation, window fusion, and (for a compound stack) the monitor /
    /// emergency logic, then either returns the finished decision or the
    /// observation the NN must be evaluated on.
    ///
    /// Completing a [`StepPlan::Nn`] with the embedded planner's own
    /// evaluation reproduces [`StackExec::plan`] bit for bit — the
    /// observation is built by the same fusion code, and (for compound
    /// stacks) [`MultiCompoundPlanner::plan`] is itself implemented as
    /// prepare + inline evaluation.
    pub(crate) fn plan_prepare(&mut self, time: f64, ego: &VehicleState) -> StepPlan {
        match &mut self.kind {
            ExecKind::Pure {
                planner,
                estimators,
                window,
                scenarios,
                is_nn,
            } => {
                fill_estimates(&mut self.est_scratch, &self.frozen, estimators, time);
                fill_windows(
                    &mut self.win_scratch,
                    &self.frozen,
                    scenarios,
                    &self.est_scratch,
                    *window,
                    time,
                );
                let fused = merge_windows_in_place(&mut self.win_scratch, DEFAULT_MERGE_GAP);
                let obs = Observation::new(time, *ego, fused);
                if *is_nn {
                    StepPlan::Nn { obs }
                } else {
                    StepPlan::Ready(PlanDecision {
                        accel: planner.plan(&obs),
                        source: PlannerSource::NeuralNetwork,
                    })
                }
            }
            ExecKind::Compound {
                compound,
                estimators,
            } => {
                fill_estimates(&mut self.est_scratch, &self.frozen, estimators, time);
                match compound.plan_prepare(time, ego, &self.est_scratch) {
                    safe_shield::PreparedPlan::Decided(decision) => StepPlan::Ready(decision),
                    safe_shield::PreparedPlan::Nominal { obs } => StepPlan::Nn { obs },
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_tables() {
        let cfg = EpisodeConfig::paper_default(0);
        let t = StackSpec::pure_teacher_conservative(&cfg).unwrap();
        assert_eq!(t.label(), "pure teacher");
    }

    #[test]
    fn executors_build_for_every_spec() {
        let cfg = EpisodeConfig::paper_default(0);
        let scenarios = cfg.scenarios().unwrap();
        let teacher = TeacherPolicy::conservative(&scenarios[0]);
        let specs = [
            StackSpec::PureTeacher {
                policy: teacher,
                window: WindowKind::Conservative,
            },
            StackSpec::pure_teacher_aggressive(&cfg).unwrap(),
        ];
        for spec in specs {
            let mut exec = spec.build(&cfg, &scenarios);
            let (decision, est) = exec.plan(0.0, &cfg.ego_init);
            assert!(decision.accel.is_finite());
            assert!(est.position.contains(0.0)); // C1 starts at forward 0
        }
    }

    #[test]
    fn reinit_matches_a_fresh_build() {
        // Run an episode's worth of planning on a reused executor, then
        // compare a freshly built one against a reinitialised one.
        let cfg = EpisodeConfig::paper_default(3);
        let scenarios = cfg.scenarios().unwrap();
        let spec = StackSpec::pure_teacher_conservative(&cfg).unwrap();
        let inits: Vec<VehicleState> = cfg
            .vehicles()
            .iter()
            .map(|(_, speed, _)| VehicleState::new(0.0, *speed, 0.0))
            .collect();

        let mut reused = spec.build(&cfg, &scenarios);
        for k in 0..40 {
            let t = k as f64 * cfg.dt_c;
            let _ = reused.plan(t, &cfg.ego_init);
        }
        spec.reinit(&mut reused, &cfg, &scenarios, &inits);

        let mut fresh = spec.build(&cfg, &scenarios);
        for k in 0..10 {
            let t = k as f64 * cfg.dt_c;
            let (a, ea) = fresh.plan(t, &cfg.ego_init);
            let (b, eb) = reused.plan(t, &cfg.ego_init);
            assert_eq!(a.accel.to_bits(), b.accel.to_bits(), "step {k}");
            assert_eq!(a.source, b.source, "step {k}");
            assert_eq!(ea, eb, "step {k}");
        }
    }
}
