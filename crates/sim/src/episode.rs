use cv_comm::{Channel, Message};
use cv_dynamics::Trajectory;
use cv_estimation::{Interval, VehicleEstimate};
use cv_sensing::Measurement;
use left_turn::ScenarioError;
use safe_shield::{Outcome, PlannerSource, Scenario};

use crate::cadence::Cadence;
use crate::{EpisodeConfig, EpisodeWorkspace, StackSpec};

/// Errors running an episode.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// The episode configuration produced an invalid scenario.
    Scenario(ScenarioError),
    /// A batch configuration that cannot be run (empty start grid, zero
    /// episodes, …) — rejected up front instead of panicking mid-batch.
    InvalidBatch {
        /// What is wrong with the configuration.
        reason: String,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Scenario(e) => write!(f, "invalid scenario: {e}"),
            SimError::InvalidBatch { reason } => write!(f, "invalid batch: {reason}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Scenario(e) => Some(e),
            SimError::InvalidBatch { .. } => None,
        }
    }
}

impl From<ScenarioError> for SimError {
    fn from(e: ScenarioError) -> Self {
        SimError::Scenario(e)
    }
}

/// Per-step traces recorded when requested (used by the Fig. 6 experiments
/// and the examples).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EpisodeTraces {
    /// Ego trajectory (shared axis).
    pub ego: Trajectory,
    /// Conflicting-vehicle trajectories (each in its own forward frame),
    /// primary `C_1` first.
    pub others: Vec<Trajectory>,
    /// Raw sensor measurements (all vehicles, in event order).
    pub measurements: Vec<Measurement>,
    /// The estimator's belief about the primary vehicle at each control step.
    pub estimates: Vec<(f64, VehicleEstimate)>,
    /// Window estimates for the primary vehicle at each control step.
    pub windows: Vec<WindowTrace>,
    /// Planner decision at each control step.
    pub decisions: Vec<DecisionTrace>,
}

impl EpisodeTraces {
    /// The primary conflicting vehicle's trajectory.
    ///
    /// # Panics
    ///
    /// Panics if no trajectory was recorded.
    pub fn primary_other(&self) -> &Trajectory {
        &self.others[0]
    }
}

/// One planning decision along an episode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DecisionTrace {
    /// Step time.
    pub time: f64,
    /// Who produced the command.
    pub source: PlannerSource,
    /// The (unclamped) acceleration command.
    pub accel: f64,
}

/// The three `τ_1` window estimates at one control step, plus the truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowTrace {
    /// Step time.
    pub time: f64,
    /// Conservative window (paper Eq. 7).
    pub conservative: Option<Interval>,
    /// Aggressive window (paper Eq. 8, default buffers).
    pub aggressive: Option<Interval>,
    /// Window computed from the *true* `C_1` state with zero uncertainty
    /// (constant-speed projection of the truth).
    pub truth_nominal: Option<Interval>,
}

/// Result of one simulated episode.
#[derive(Debug, Clone, PartialEq)]
pub struct EpisodeResult {
    /// Ground-truth outcome (collision / reached / timeout).
    pub outcome: Outcome,
    /// The paper's evaluation value `η`.
    pub eta: f64,
    /// Steps decided by the emergency planner.
    pub emergency_steps: u64,
    /// Total planned steps.
    pub total_steps: u64,
    /// On [`Outcome::Collision`], the index of the conflicting vehicle the
    /// ego collided with (`0` = the primary `C_1`); `None` otherwise. This
    /// is the per-pair attribution behind [`EpisodeResult::pair_etas`].
    pub collided_pair: Option<usize>,
    /// Optional per-step traces.
    pub traces: Option<EpisodeTraces>,
}

impl EpisodeResult {
    /// Emergency frequency: fraction of steps decided by `κ_e`.
    pub fn emergency_frequency(&self) -> f64 {
        if self.total_steps == 0 {
            0.0
        } else {
            self.emergency_steps as f64 / self.total_steps as f64
        }
    }

    /// Per-pair η scores, one per conflicting vehicle (`pairs` of them):
    /// `−1` for the pair the ego collided with, `1/t_r` for every pair when
    /// the target was reached, `0` otherwise. The episode-level `η` is the
    /// minimum over pairs ([`safe_shield::platoon_eta`]).
    pub fn pair_etas(&self, pairs: usize) -> Vec<f64> {
        (0..pairs)
            .map(|i| match self.outcome {
                Outcome::Collision { .. } if self.collided_pair == Some(i) => -1.0,
                Outcome::Reached { .. } => self.eta,
                _ => 0.0,
            })
            .collect()
    }
}

/// Simulates one episode of the unprotected left turn (with one or more
/// oncoming vehicles; the paper evaluates one).
///
/// Event order per control step `t = k·Δt_c`: every vehicle broadcasts
/// (every `Δt_m`), due messages are delivered, the sensors fire (every
/// `Δt_s`), ground truth is checked (collision → `η = −1`, target →
/// `η = 1/t`), the stack plans, and all vehicles advance one step (each
/// conflicting vehicle under its configured [`crate::DriverModel`]).
///
/// # Errors
///
/// Returns [`SimError::Scenario`] if the configuration is invalid.
///
/// This is the one-shot convenience path: it builds a fresh
/// [`EpisodeWorkspace`] per call. Batch loops should hold one workspace per
/// worker and call [`EpisodeWorkspace::run`] directly — the results are
/// bit-identical.
pub fn run_episode(
    cfg: &EpisodeConfig,
    spec: &StackSpec,
    record_traces: bool,
) -> Result<EpisodeResult, SimError> {
    EpisodeWorkspace::new(spec.clone()).run(cfg, record_traces)
}

impl EpisodeWorkspace {
    /// Runs one episode, reusing every buffer this workspace retains from
    /// earlier runs (see the [`crate::workspace`] module docs). Event order
    /// and results are identical to [`run_episode`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Scenario`] if the configuration is invalid.
    pub fn run(
        &mut self,
        cfg: &EpisodeConfig,
        record_traces: bool,
    ) -> Result<EpisodeResult, SimError> {
        match self.run_interruptible(cfg, record_traces, None) {
            Ok(Some(result)) => Ok(result),
            Ok(None) => unreachable!("no interrupt flag was supplied"),
            Err(e) => Err(e),
        }
    }

    /// Like [`EpisodeWorkspace::run`], but checks `interrupt` (with a
    /// relaxed load) at the top of every control step and returns
    /// `Ok(None)` — the episode abandoned mid-flight, no partial result —
    /// as soon as the flag is observed set. This is the cooperative stop
    /// used by job cancellation and deadline expiry: granularity is one
    /// episode step, never a whole episode or batch.
    pub fn run_interruptible(
        &mut self,
        cfg: &EpisodeConfig,
        record_traces: bool,
        interrupt: Option<&std::sync::atomic::AtomicBool>,
    ) -> Result<Option<EpisodeResult>, SimError> {
        #[cfg(feature = "fault-injection")]
        if let StackSpec::PanicInjection { panic_seeds, .. } = self.spec() {
            assert!(
                !panic_seeds.contains(&cfg.seed),
                "injected planner fault for seed {}",
                cfg.seed
            );
        }
        let slot = self.scenario_slot(cfg)?;
        let ego_limits = self.cached_scenarios(slot)[0].ego_limits();
        let other_limits = self.cached_scenarios(slot)[0].other_limits();
        self.arm_vehicles(cfg, other_limits);

        // Split the workspace into disjoint field borrows for the loop.
        let EpisodeWorkspace {
            spec,
            exec,
            scenario_cache,
            channels,
            sensors,
            drivers,
            others,
            inbox,
            ..
        } = self;
        let scenarios = scenario_cache[slot].1.as_slice();
        match exec {
            // Re-arm the retained executor: the planner (for an NN stack,
            // its weight matrices) is NOT re-cloned.
            Some(e) => spec.reinit(e, cfg, scenarios, others),
            None => *exec = Some(spec.build(cfg, scenarios)),
        }
        let exec = exec.as_mut().expect("executor armed above");

        let mut ego = cfg.ego_init;
        let msg = Cadence::new(cfg.dt_m, cfg.dt_c);
        let sense = Cadence::new(cfg.dt_s, cfg.dt_c);
        let steps = (cfg.horizon / cfg.dt_c).ceil() as u64;

        let mut traces = record_traces.then(|| EpisodeTraces {
            others: vec![Trajectory::new(); others.len()],
            ..EpisodeTraces::default()
        });
        let mut emergency_steps = 0u64;
        let mut total_steps = 0u64;
        let mut outcome = Outcome::Timeout;
        let mut collided_pair = None;

        for step in 0..=steps {
            if let Some(flag) = interrupt {
                if flag.load(std::sync::atomic::Ordering::Relaxed) {
                    return Ok(None);
                }
            }
            let t = step as f64 * cfg.dt_c;

            // V2V broadcast and delivery, then sensing — per vehicle.
            for (i, other) in others.iter().enumerate() {
                if msg.fires_at(step) {
                    channels[i]
                        .chan
                        .send(Message::from_state(1 + i, t, other), t);
                }
                inbox.clear();
                channels[i].chan.receive_into(t, inbox);
                for msg in inbox.iter() {
                    exec.estimator_mut(i).on_message(msg);
                }
                if sense.fires_at(step) {
                    // Dropout-free sensors keep the historical RNG stream.
                    let maybe = if cfg.sensor_dropout > 0.0 {
                        sensors[i].try_measure(1 + i, t, other)
                    } else {
                        Some(sensors[i].measure(1 + i, t, other))
                    };
                    if let Some(m) = maybe {
                        if let Some(tr) = traces.as_mut() {
                            tr.measurements.push(m);
                        }
                        exec.estimator_mut(i).on_measurement(&m);
                    }
                }
            }

            // Ground-truth evaluation, attributed to the colliding pair.
            if let Some(hit) = scenarios
                .iter()
                .zip(others.iter())
                .position(|(s, other)| s.collision(&ego, other))
            {
                outcome = Outcome::Collision { time: t };
                collided_pair = Some(hit);
                break;
            }
            if scenarios[0].target_reached(t, &ego) {
                outcome = Outcome::Reached { time: t };
                break;
            }

            // Plan and actuate.
            let (decision, est) = exec.plan(t, &ego);
            total_steps += 1;
            if decision.source == PlannerSource::Emergency {
                emergency_steps += 1;
            }
            if let Some(tr) = traces.as_mut() {
                tr.ego.push(t, ego);
                for (trajectory, other) in tr.others.iter_mut().zip(others.iter()) {
                    trajectory.push(t, *other);
                }
                tr.estimates.push((t, est));
                let truth_est = VehicleEstimate::exact(t, others[0]);
                tr.windows.push(WindowTrace {
                    time: t,
                    conservative: scenarios[0].conservative_window(t, &est),
                    aggressive: scenarios[0].aggressive_window(t, &est, &Default::default()),
                    truth_nominal: scenarios[0].nominal_window(t, &truth_est),
                });
                tr.decisions.push(DecisionTrace {
                    time: t,
                    source: decision.source,
                    accel: decision.accel,
                });
            }

            ego = ego_limits.step(&ego, decision.accel, cfg.dt_c);
            crate::driver::actuate_others(cfg, other_limits, drivers, others, t);
        }

        Ok(Some(EpisodeResult {
            eta: outcome.eta(),
            outcome,
            emergency_steps,
            total_steps,
            collided_pair,
            traces,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DriverModel, ExtraVehicle};
    use cv_comm::CommSetting;

    #[test]
    fn conservative_teacher_is_safe_and_eventually_reaches() {
        let mut safe = 0;
        let mut reached = 0;
        for seed in 0..20 {
            let cfg = EpisodeConfig::paper_default(seed);
            let spec = StackSpec::pure_teacher_conservative(&cfg).unwrap();
            let r = run_episode(&cfg, &spec, false).unwrap();
            if r.outcome.is_safe() {
                safe += 1;
            }
            if r.outcome.reaching_time().is_some() {
                reached += 1;
            }
        }
        assert_eq!(safe, 20, "conservative teacher collided");
        assert!(reached >= 18, "only {reached} reached the target");
    }

    #[test]
    fn aggressive_teacher_is_fast_but_unsafe_somewhere() {
        let mut collisions = 0;
        let mut fastest = f64::MAX;
        for seed in 0..60 {
            let mut cfg = EpisodeConfig::paper_default(seed);
            // Under disturbance its naive estimates go stale.
            cfg.comm = CommSetting::Delayed {
                delay: 0.25,
                drop_prob: 0.5,
            };
            let spec = StackSpec::pure_teacher_aggressive(&cfg).unwrap();
            let r = run_episode(&cfg, &spec, false).unwrap();
            if !r.outcome.is_safe() {
                collisions += 1;
            }
            if let Some(t) = r.outcome.reaching_time() {
                fastest = fastest.min(t);
            }
        }
        assert!(collisions > 0, "aggressive teacher never collided");
        assert!(fastest < 8.0, "aggressive teacher too slow: {fastest}");
    }

    #[test]
    fn same_seed_same_result() {
        let cfg = EpisodeConfig::paper_default(9);
        let spec = StackSpec::pure_teacher_conservative(&cfg).unwrap();
        let a = run_episode(&cfg, &spec, false).unwrap();
        let b = run_episode(&cfg, &spec, false).unwrap();
        assert_eq!(a.outcome, b.outcome);
        assert_eq!(a.emergency_steps, b.emergency_steps);
    }

    #[test]
    fn traces_are_recorded_when_requested() {
        let cfg = EpisodeConfig::paper_default(1);
        let spec = StackSpec::pure_teacher_conservative(&cfg).unwrap();
        let r = run_episode(&cfg, &spec, true).unwrap();
        let tr = r.traces.expect("traces requested");
        assert!(!tr.ego.is_empty());
        assert_eq!(tr.ego.len(), tr.primary_other().len());
        assert!(!tr.measurements.is_empty());
        assert_eq!(tr.estimates.len(), tr.windows.len());
        assert_eq!(tr.estimates.len(), tr.decisions.len());
    }

    #[test]
    fn timeout_when_ego_cannot_move() {
        let mut cfg = EpisodeConfig::paper_default(2);
        cfg.horizon = 0.5;
        let spec = StackSpec::pure_teacher_conservative(&cfg).unwrap();
        let r = run_episode(&cfg, &spec, false).unwrap();
        assert_eq!(r.outcome, Outcome::Timeout);
        assert_eq!(r.eta, 0.0);
    }

    #[test]
    fn platoon_episode_runs_and_respects_every_vehicle() {
        // Two oncoming vehicles; the conservative teacher must stay safe and
        // crossing behind two cars can never beat crossing behind one.
        let mut cfg = EpisodeConfig::paper_default(4);
        cfg.extra_others = vec![ExtraVehicle::new(62.0, 10.0, DriverModel::UniformRandom)];
        let spec = StackSpec::pure_teacher_conservative(&cfg).unwrap();
        let single = {
            let mut c = cfg.clone();
            c.extra_others.clear();
            run_episode(&c, &spec, false).unwrap()
        };
        let platoon = run_episode(&cfg, &spec, false).unwrap();
        assert!(platoon.outcome.is_safe());
        if let (Some(t1), Some(t2)) = (
            single.outcome.reaching_time(),
            platoon.outcome.reaching_time(),
        ) {
            assert!(t2 + 1e-9 >= t1, "platoon {t2} vs single {t1}");
        }
    }

    #[test]
    fn legacy_sub_seeds_are_vehicle_zero() {
        let cfg = EpisodeConfig::paper_default(77);
        assert_eq!(cfg.seed_driving_for(0), cfg.seed_driving());
        assert_eq!(cfg.seed_channel_for(0), cfg.seed_channel());
        assert_eq!(cfg.seed_sensor_for(0), cfg.seed_sensor());
    }

    #[test]
    fn sensor_dropout_does_not_break_safety() {
        // Messages lost AND half the sensor frames dropped: the hard
        // intervals widen, the shield stays sound.
        let spec_cfg = EpisodeConfig::paper_default(0);
        let spec = StackSpec::pure_teacher_conservative(&spec_cfg).unwrap();
        for seed in 0..10 {
            let mut cfg = EpisodeConfig::paper_default(seed);
            cfg.comm = CommSetting::Lost;
            cfg.sensor_dropout = 0.5;
            let r = run_episode(&cfg, &spec, false).unwrap();
            assert!(r.outcome.is_safe(), "seed {seed}: {:?}", r.outcome);
        }
    }

    #[test]
    fn ambush_driver_is_contained_by_the_teacher() {
        // The oncoming vehicle brakes hard mid-approach: worst case for a
        // constant-velocity assumption. The conservative teacher uses sound
        // windows, so it must stay safe.
        let mut cfg = EpisodeConfig::paper_default(5);
        cfg.driver = DriverModel::Ambush { brake_at: 2.0 };
        let spec = StackSpec::pure_teacher_conservative(&cfg).unwrap();
        let r = run_episode(&cfg, &spec, false).unwrap();
        assert!(r.outcome.is_safe());
    }
}
