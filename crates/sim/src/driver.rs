//! Driver models for the oncoming vehicle `C_1`.
//!
//! The paper's experiments draw `C_1`'s control input uniformly at random
//! every control step (Section V-A) — [`DriverModel::UniformRandom`]. As a
//! library we also provide smoother and *harder* traffic behaviours, used by
//! the stress tests and available for custom experiments:
//!
//! * [`DriverModel::OrnsteinUhlenbeck`] — temporally correlated
//!   accelerations (more realistic speed profiles than white noise);
//! * [`DriverModel::ConstantSpeed`] — the textbook baseline;
//! * [`DriverModel::Ambush`] — cruise, then brake hard at a fixed time: the
//!   adversarial manoeuvre that breaks constant-velocity assumptions.
//!
//! All models are deterministic given the episode seed, preserving paired
//! Monte-Carlo comparisons across planner stacks.

use cv_dynamics::{VehicleLimits, VehicleState};
use cv_rng::{Rng, SplitMix64};

/// A driving behaviour for a non-ego vehicle.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum DriverModel {
    /// The paper's behaviour: a fresh uniform sample from
    /// `[a_min, a_max]` at every control step.
    #[default]
    UniformRandom,
    /// Mean-reverting (Ornstein–Uhlenbeck) acceleration:
    /// `a' = a + θ·(0 − a)·Δt + σ·√Δt·ξ`, clamped to the limits.
    OrnsteinUhlenbeck {
        /// Mean-reversion rate `θ` (1/s).
        theta: f64,
        /// Noise scale `σ` (m/s²·√s).
        sigma: f64,
    },
    /// No acceleration at all.
    ConstantSpeed,
    /// Cruise at constant speed, then brake at `a_min` from `brake_at`
    /// until `v_min` — the adversarial profile that invalidates naive
    /// constant-velocity predictions in a single manoeuvre.
    Ambush {
        /// Time at which braking starts (s).
        brake_at: f64,
    },
}

impl DriverModel {
    /// Instantiates the per-episode driver with a deterministic seed.
    pub fn driver(&self, limits: VehicleLimits, seed: u64) -> Driver {
        Driver {
            model: *self,
            limits,
            rng: SplitMix64::seed_from_u64(seed),
            accel: 0.0,
        }
    }
}

/// Stateful per-episode driver produced by [`DriverModel::driver`].
#[derive(Debug, Clone)]
pub struct Driver {
    model: DriverModel,
    limits: VehicleLimits,
    rng: SplitMix64,
    accel: f64,
}

impl Driver {
    /// The acceleration command for the step starting at `time`.
    pub fn accel(&mut self, time: f64, _state: &VehicleState, dt: f64) -> f64 {
        let (a_min, a_max) = (self.limits.a_min(), self.limits.a_max());
        self.accel = match self.model {
            DriverModel::UniformRandom => self.rng.random_range(a_min..=a_max),
            DriverModel::OrnsteinUhlenbeck { theta, sigma } => {
                let xi: f64 = self.rng.random_range(-1.0..=1.0) * 3.0_f64.sqrt(); // unit variance
                (self.accel - theta * self.accel * dt + sigma * dt.sqrt() * xi).clamp(a_min, a_max)
            }
            DriverModel::ConstantSpeed => 0.0,
            DriverModel::Ambush { brake_at } => {
                if time >= brake_at {
                    a_min
                } else {
                    0.0
                }
            }
        };
        self.accel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> VehicleLimits {
        VehicleLimits::new(3.0, 14.0, -3.0, 3.0).unwrap()
    }

    #[test]
    fn uniform_random_stays_in_bounds_and_is_seeded() {
        let s = VehicleState::new(0.0, 10.0, 0.0);
        let mut d1 = DriverModel::UniformRandom.driver(limits(), 9);
        let mut d2 = DriverModel::UniformRandom.driver(limits(), 9);
        for i in 0..200 {
            let t = i as f64 * 0.05;
            let a1 = d1.accel(t, &s, 0.05);
            assert!((-3.0..=3.0).contains(&a1));
            assert_eq!(a1, d2.accel(t, &s, 0.05));
        }
    }

    #[test]
    fn ou_accelerations_are_correlated() {
        let s = VehicleState::new(0.0, 10.0, 0.0);
        let model = DriverModel::OrnsteinUhlenbeck {
            theta: 0.5,
            sigma: 1.5,
        };
        let mut d = model.driver(limits(), 4);
        let series: Vec<f64> = (0..400)
            .map(|i| d.accel(i as f64 * 0.05, &s, 0.05))
            .collect();
        // Lag-1 autocorrelation should be clearly positive (white noise ~ 0).
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        let var: f64 = series.iter().map(|a| (a - mean) * (a - mean)).sum();
        let cov: f64 = series
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum();
        let rho = cov / var;
        assert!(rho > 0.5, "lag-1 autocorrelation {rho}");
        assert!(series.iter().all(|a| (-3.0..=3.0).contains(a)));
    }

    #[test]
    fn ambush_switches_to_full_braking() {
        let s = VehicleState::new(0.0, 10.0, 0.0);
        let mut d = DriverModel::Ambush { brake_at: 1.0 }.driver(limits(), 0);
        assert_eq!(d.accel(0.5, &s, 0.05), 0.0);
        assert_eq!(d.accel(1.0, &s, 0.05), -3.0);
        assert_eq!(d.accel(2.0, &s, 0.05), -3.0);
    }

    #[test]
    fn constant_speed_never_accelerates() {
        let s = VehicleState::new(0.0, 10.0, 0.0);
        let mut d = DriverModel::ConstantSpeed.driver(limits(), 0);
        assert_eq!(d.accel(0.0, &s, 0.05), 0.0);
    }
}
