//! Driver models for the oncoming vehicle `C_1`.
//!
//! The paper's experiments draw `C_1`'s control input uniformly at random
//! every control step (Section V-A) — [`DriverModel::UniformRandom`]. As a
//! library we also provide smoother and *harder* traffic behaviours, used by
//! the stress tests and available for custom experiments:
//!
//! * [`DriverModel::OrnsteinUhlenbeck`] — temporally correlated
//!   accelerations (more realistic speed profiles than white noise);
//! * [`DriverModel::ConstantSpeed`] — the textbook baseline;
//! * [`DriverModel::Ambush`] — cruise, then brake hard at a fixed time: the
//!   adversarial manoeuvre that breaks constant-velocity assumptions.
//! * [`DriverModel::GapTracking`] — a platoon follower: critically damped
//!   feedback on the headway to its predecessor (the ReachMM-style
//!   gap-tracking policy). Followers receive the predecessor snapshot as
//!   [`LeadInfo`] through [`Driver::accel_following`]; the front vehicle of
//!   a platoon (no predecessor) holds its speed.
//!
//! All models are deterministic given the episode seed, preserving paired
//! Monte-Carlo comparisons across planner stacks.

use cv_dynamics::{VehicleLimits, VehicleState};
use cv_rng::{Rng, SplitMix64};

/// A driving behaviour for a non-ego vehicle.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub enum DriverModel {
    /// The paper's behaviour: a fresh uniform sample from
    /// `[a_min, a_max]` at every control step.
    #[default]
    UniformRandom,
    /// Mean-reverting (Ornstein–Uhlenbeck) acceleration:
    /// `a' = a + θ·(0 − a)·Δt + σ·√Δt·ξ`, clamped to the limits.
    OrnsteinUhlenbeck {
        /// Mean-reversion rate `θ` (1/s).
        theta: f64,
        /// Noise scale `σ` (m/s²·√s).
        sigma: f64,
    },
    /// No acceleration at all.
    ConstantSpeed,
    /// Cruise at constant speed, then brake at `a_min` from `brake_at`
    /// until `v_min` — the adversarial profile that invalidates naive
    /// constant-velocity predictions in a single manoeuvre.
    Ambush {
        /// Time at which braking starts (s).
        brake_at: f64,
    },
    /// Platoon follower: critically damped feedback on the headway to the
    /// vehicle directly ahead,
    /// `a = gain·(gap − target_gap) + 2·√gain·(v_lead − v)`,
    /// clamped to the limits. Deterministic (no RNG draws); without a
    /// predecessor it holds its speed.
    GapTracking {
        /// Headway the follower tracks (m, shared axis).
        target_gap: f64,
        /// Proportional feedback gain on the gap error (1/s²); the
        /// velocity term is derived as `2·√gain` (critical damping).
        gain: f64,
    },
}

/// Snapshot of the predecessor vehicle handed to a platoon follower for one
/// control step: the shared-axis headway and the predecessor's speed, both
/// taken *before* either vehicle is advanced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LeadInfo {
    /// Shared-axis distance to the predecessor (positive when behind it).
    pub gap: f64,
    /// Predecessor speed (m/s, forward frame).
    pub velocity: f64,
}

impl DriverModel {
    /// Instantiates the per-episode driver with a deterministic seed.
    pub fn driver(&self, limits: VehicleLimits, seed: u64) -> Driver {
        Driver {
            model: *self,
            limits,
            rng: SplitMix64::seed_from_u64(seed),
            accel: 0.0,
        }
    }
}

/// Stateful per-episode driver produced by [`DriverModel::driver`].
#[derive(Debug, Clone)]
pub struct Driver {
    model: DriverModel,
    limits: VehicleLimits,
    rng: SplitMix64,
    accel: f64,
}

impl Driver {
    /// The acceleration command for the step starting at `time`.
    ///
    /// Equivalent to [`Driver::accel_following`] without a predecessor; a
    /// [`DriverModel::GapTracking`] driver therefore holds its speed.
    pub fn accel(&mut self, time: f64, state: &VehicleState, dt: f64) -> f64 {
        self.accel_following(time, state, None, dt)
    }

    /// The acceleration command for the step starting at `time`, given the
    /// predecessor snapshot `lead` (for platoon followers).
    ///
    /// Models other than [`DriverModel::GapTracking`] ignore `lead` and
    /// consume their RNG streams exactly as [`Driver::accel`] always has,
    /// so threading predecessor state through the episode loop is
    /// bit-invisible to every pre-platoon configuration.
    pub fn accel_following(
        &mut self,
        time: f64,
        state: &VehicleState,
        lead: Option<LeadInfo>,
        dt: f64,
    ) -> f64 {
        let (a_min, a_max) = (self.limits.a_min(), self.limits.a_max());
        self.accel = match self.model {
            DriverModel::UniformRandom => self.rng.random_range(a_min..=a_max),
            DriverModel::OrnsteinUhlenbeck { theta, sigma } => {
                let xi: f64 = self.rng.random_range(-1.0..=1.0) * 3.0_f64.sqrt(); // unit variance
                (self.accel - theta * self.accel * dt + sigma * dt.sqrt() * xi).clamp(a_min, a_max)
            }
            DriverModel::ConstantSpeed => 0.0,
            DriverModel::Ambush { brake_at } => {
                if time >= brake_at {
                    a_min
                } else {
                    0.0
                }
            }
            DriverModel::GapTracking { target_gap, gain } => match lead {
                Some(lead) => (gain * (lead.gap - target_gap)
                    + 2.0 * gain.sqrt() * (lead.velocity - state.velocity))
                    .clamp(a_min, a_max),
                None => 0.0,
            },
        };
        self.accel
    }
}

/// Advances every conflicting vehicle one control step — the single
/// actuation site shared by the per-episode loop and the lane stepper, so
/// the two stay in lockstep by construction.
///
/// Vehicles update in index order, and each gap-tracking follower sees its
/// predecessor's *pre-step* snapshot (both frames sampled at `t`), so the
/// in-place update order cannot leak into the feedback law. The shared-axis
/// headway of vehicle `i` to vehicle `i − 1` is
/// `(start_i − p_i) − (start_{i−1} − p_{i−1})` (each vehicle drives toward
/// decreasing shared coordinates in its own forward frame). Non-platoon
/// models ignore the snapshot and keep their historical RNG streams.
pub(crate) fn actuate_others(
    cfg: &crate::EpisodeConfig,
    limits: VehicleLimits,
    drivers: &mut [Driver],
    others: &mut [VehicleState],
    t: f64,
) {
    let mut lead: Option<(f64, VehicleState)> = None;
    for (i, other) in others.iter_mut().enumerate() {
        let pre = *other;
        let start = crate::workspace::vehicle(cfg, i).0;
        let info = lead.map(|(lead_start, lead_pre): (f64, VehicleState)| LeadInfo {
            gap: (start - pre.position) - (lead_start - lead_pre.position),
            velocity: lead_pre.velocity,
        });
        let a = drivers[i].accel_following(t, &pre, info, cfg.dt_c);
        *other = limits.step(&pre, a, cfg.dt_c);
        lead = Some((start, pre));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> VehicleLimits {
        VehicleLimits::new(3.0, 14.0, -3.0, 3.0).unwrap()
    }

    #[test]
    fn uniform_random_stays_in_bounds_and_is_seeded() {
        let s = VehicleState::new(0.0, 10.0, 0.0);
        let mut d1 = DriverModel::UniformRandom.driver(limits(), 9);
        let mut d2 = DriverModel::UniformRandom.driver(limits(), 9);
        for i in 0..200 {
            let t = i as f64 * 0.05;
            let a1 = d1.accel(t, &s, 0.05);
            assert!((-3.0..=3.0).contains(&a1));
            assert_eq!(a1, d2.accel(t, &s, 0.05));
        }
    }

    #[test]
    fn ou_accelerations_are_correlated() {
        let s = VehicleState::new(0.0, 10.0, 0.0);
        let model = DriverModel::OrnsteinUhlenbeck {
            theta: 0.5,
            sigma: 1.5,
        };
        let mut d = model.driver(limits(), 4);
        let series: Vec<f64> = (0..400)
            .map(|i| d.accel(i as f64 * 0.05, &s, 0.05))
            .collect();
        // Lag-1 autocorrelation should be clearly positive (white noise ~ 0).
        let mean = series.iter().sum::<f64>() / series.len() as f64;
        let var: f64 = series.iter().map(|a| (a - mean) * (a - mean)).sum();
        let cov: f64 = series
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum();
        let rho = cov / var;
        assert!(rho > 0.5, "lag-1 autocorrelation {rho}");
        assert!(series.iter().all(|a| (-3.0..=3.0).contains(a)));
    }

    #[test]
    fn ambush_switches_to_full_braking() {
        let s = VehicleState::new(0.0, 10.0, 0.0);
        let mut d = DriverModel::Ambush { brake_at: 1.0 }.driver(limits(), 0);
        assert_eq!(d.accel(0.5, &s, 0.05), 0.0);
        assert_eq!(d.accel(1.0, &s, 0.05), -3.0);
        assert_eq!(d.accel(2.0, &s, 0.05), -3.0);
    }

    #[test]
    fn constant_speed_never_accelerates() {
        let s = VehicleState::new(0.0, 10.0, 0.0);
        let mut d = DriverModel::ConstantSpeed.driver(limits(), 0);
        assert_eq!(d.accel(0.0, &s, 0.05), 0.0);
    }

    #[test]
    fn gap_tracker_closes_on_the_target_headway() {
        let model = DriverModel::GapTracking {
            target_gap: 10.0,
            gain: 0.6,
        };
        let mut d = model.driver(limits(), 0);
        // Lead cruises at 10 m/s; follower starts 6 m too far back.
        let lead_v = 10.0;
        let mut follower = VehicleState::new(0.0, 10.0, 0.0);
        let mut gap = 16.0;
        let dt = 0.05;
        for i in 0..1200 {
            let a = d.accel_following(
                i as f64 * dt,
                &follower,
                Some(LeadInfo {
                    gap,
                    velocity: lead_v,
                }),
                dt,
            );
            let next = limits().step(&follower, a, dt);
            // Both frames advance toward decreasing shared coordinates.
            gap -= (next.position - follower.position) - lead_v * dt;
            follower = next;
        }
        assert!((gap - 10.0).abs() < 0.1, "gap settled at {gap}");
        assert!((follower.velocity - lead_v).abs() < 0.1);
    }

    #[test]
    fn gap_tracker_without_predecessor_holds_speed() {
        let s = VehicleState::new(0.0, 10.0, 0.0);
        let mut d = DriverModel::GapTracking {
            target_gap: 9.0,
            gain: 0.6,
        }
        .driver(limits(), 3);
        assert_eq!(d.accel(0.0, &s, 0.05), 0.0);
        assert_eq!(d.accel_following(0.5, &s, None, 0.05), 0.0);
    }

    #[test]
    fn gap_tracker_is_deterministic_and_draws_no_randomness() {
        let s = VehicleState::new(0.0, 9.0, 0.0);
        let lead = Some(LeadInfo {
            gap: 12.0,
            velocity: 10.0,
        });
        let mut d1 = DriverModel::GapTracking {
            target_gap: 9.0,
            gain: 0.6,
        }
        .driver(limits(), 1);
        let mut d2 = DriverModel::GapTracking {
            target_gap: 9.0,
            gain: 0.6,
        }
        .driver(limits(), 999);
        for i in 0..50 {
            let t = i as f64 * 0.05;
            assert_eq!(
                d1.accel_following(t, &s, lead, 0.05),
                d2.accel_following(t, &s, lead, 0.05),
                "seed must not influence the feedback policy"
            );
        }
    }
}
