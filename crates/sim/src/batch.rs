use crate::{run_episode, BatchSummary, EpisodeConfig, EpisodeResult, SimError, StackSpec};

/// Configuration for a Monte-Carlo batch.
///
/// Episode `i` uses seed `base_seed + i` and the `i % starts.len()`-th entry
/// of the initial-position grid, so two batches with the same `BatchConfig`
/// but different [`StackSpec`]s replay *identical* episodes — which is what
/// makes the paired winning-percentage columns of the paper's tables
/// meaningful.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchConfig {
    /// Episode template (comm setting, noise, periods…). The `seed` and
    /// `other_start_shared` fields are overwritten per episode.
    pub template: EpisodeConfig,
    /// Number of episodes.
    pub episodes: usize,
    /// Base seed.
    pub base_seed: u64,
    /// Grid of `C_1` initial positions cycled through
    /// (default: the paper's `{50.5 + 0.5j}`).
    pub starts: Vec<f64>,
    /// Worker threads (`0` = all available parallelism).
    pub threads: usize,
}

impl BatchConfig {
    /// A batch over the paper's start grid with the given template.
    pub fn new(template: EpisodeConfig, episodes: usize) -> Self {
        let base_seed = template.seed;
        Self {
            template,
            episodes,
            base_seed,
            starts: EpisodeConfig::paper_start_grid(),
            threads: 0,
        }
    }

    /// Checks that the batch can actually be run.
    ///
    /// # Errors
    ///
    /// [`SimError::InvalidBatch`] when `episodes == 0` or `starts` is empty
    /// (the latter used to surface as a modulo-by-zero panic inside
    /// [`BatchConfig::episode`]).
    pub fn validate(&self) -> Result<(), SimError> {
        if self.episodes == 0 {
            return Err(SimError::InvalidBatch {
                reason: "batch must contain at least one episode".into(),
            });
        }
        if self.starts.is_empty() {
            return Err(SimError::InvalidBatch {
                reason: "initial-position grid `starts` must not be empty".into(),
            });
        }
        Ok(())
    }

    /// The concrete configuration of episode `index`.
    ///
    /// # Panics
    ///
    /// Panics if `starts` is empty; run the batch through [`run_batch`] (or
    /// call [`BatchConfig::validate`] first) to get a typed error instead.
    pub fn episode(&self, index: usize) -> EpisodeConfig {
        assert!(
            !self.starts.is_empty(),
            "BatchConfig::starts is empty; BatchConfig::validate would have rejected this"
        );
        let mut cfg = self.template.clone();
        cfg.seed = self.base_seed.wrapping_add(index as u64);
        cfg.other_start_shared = self.starts[index % self.starts.len()];
        cfg
    }

    pub(crate) fn worker_count(&self) -> usize {
        if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// Runs `batch.episodes` simulations of `spec` in parallel and returns the
/// per-episode results in seed order.
///
/// Episodes are distributed dynamically: every worker claims the next
/// unclaimed index from a shared [`crate::scheduler::WorkQueue`], which keeps
/// all workers busy when episode costs vary (early exits from collisions or
/// reached targets), and runs it on a per-worker [`crate::EpisodeWorkspace`] so
/// setup allocations are paid once per worker instead of once per episode.
/// Results are written back by index and are bit-identical to a serial run
/// for any thread count.
///
/// This is the strict all-or-nothing path: it runs on the supervised
/// executor ([`crate::run_batch_supervised`]) and then collapses the report
/// — the first per-episode error fails the batch, and a contained panic is
/// re-raised. Callers that want partial results, panic isolation, or
/// quarantine use the supervised entry point directly.
///
/// # Errors
///
/// Returns [`SimError::InvalidBatch`] for an unrunnable configuration (zero
/// episodes, empty start grid), otherwise the first [`SimError`] encountered
/// (episodes are configuration-deterministic, so an invalid geometry fails
/// the whole batch).
///
/// # Example
///
/// ```
/// use cv_sim::{run_batch, BatchConfig, BatchSummary, EpisodeConfig, StackSpec};
///
/// let template = EpisodeConfig::paper_default(0);
/// let spec = StackSpec::pure_teacher_conservative(&template)?;
/// let batch = BatchConfig::new(template, 8);
/// let results = run_batch(&batch, &spec)?;
/// let summary = BatchSummary::from_results(&results);
/// assert_eq!(summary.episodes, 8);
/// assert_eq!(summary.safe_rate, 1.0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_batch(batch: &BatchConfig, spec: &StackSpec) -> Result<Vec<EpisodeResult>, SimError> {
    crate::run_batch_supervised(batch, spec, None, None)?.into_results()
}

/// The pre-overhaul batch runner: static contiguous chunking, one fresh
/// episode build per run. Kept as the baseline side of the
/// `exp_throughput` A/B benchmark and as a cross-check in the determinism
/// tests — [`run_batch`] must produce bit-identical results.
///
/// # Errors
///
/// Same contract as [`run_batch`].
pub fn run_batch_static(
    batch: &BatchConfig,
    spec: &StackSpec,
) -> Result<Vec<EpisodeResult>, SimError> {
    batch.validate()?;
    let workers = batch.worker_count().min(batch.episodes);
    if workers <= 1 {
        return (0..batch.episodes)
            .map(|i| run_episode(&batch.episode(i), spec, false))
            .collect();
    }

    let mut slots: Vec<Option<Result<EpisodeResult, SimError>>> = Vec::new();
    slots.resize_with(batch.episodes, || None);
    let mut chunks: Vec<&mut [Option<Result<EpisodeResult, SimError>>]> = Vec::new();
    let per = batch.episodes.div_ceil(workers);
    let mut rest = slots.as_mut_slice();
    while !rest.is_empty() {
        let take = per.min(rest.len());
        let (head, tail) = rest.split_at_mut(take);
        chunks.push(head);
        rest = tail;
    }

    std::thread::scope(|scope| {
        let mut offset = 0usize;
        for chunk in chunks {
            let start = offset;
            offset += chunk.len();
            let spec = spec.clone();
            scope.spawn(move || {
                for (k, slot) in chunk.iter_mut().enumerate() {
                    *slot = Some(run_episode(&batch.episode(start + k), &spec, false));
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect()
}

/// Convenience wrapper: run a batch and summarise it in one call.
///
/// The summary carries the measured wall-clock duration and throughput of
/// this run ([`BatchSummary::wall_time_secs`] /
/// [`BatchSummary::episodes_per_sec`]).
///
/// # Errors
///
/// Propagates [`run_batch`] errors.
pub fn run_batch_summary(batch: &BatchConfig, spec: &StackSpec) -> Result<BatchSummary, SimError> {
    let t0 = std::time::Instant::now();
    let results = run_batch(batch, spec)?;
    Ok(BatchSummary::from_results(&results).with_timing(t0.elapsed()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_is_deterministic_and_parallel_matches_serial() {
        let template = EpisodeConfig::paper_default(100);
        let spec = StackSpec::pure_teacher_conservative(&template).unwrap();
        let mut serial_cfg = BatchConfig::new(template, 12);
        serial_cfg.threads = 1;
        let mut parallel_cfg = serial_cfg.clone();
        parallel_cfg.threads = 4;
        let a = run_batch(&serial_cfg, &spec).unwrap();
        let b = run_batch(&parallel_cfg, &spec).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.emergency_steps, y.emergency_steps);
        }
    }

    #[test]
    fn dynamic_scheduler_matches_static_chunking() {
        let template = EpisodeConfig::paper_default(40);
        let spec = StackSpec::pure_teacher_conservative(&template).unwrap();
        let mut batch = BatchConfig::new(template, 10);
        batch.threads = 3;
        let dynamic = run_batch(&batch, &spec).unwrap();
        let static_ = run_batch_static(&batch, &spec).unwrap();
        assert_eq!(dynamic, static_);
    }

    #[test]
    fn empty_start_grid_is_a_typed_error_not_a_panic() {
        let template = EpisodeConfig::paper_default(0);
        let spec = StackSpec::pure_teacher_conservative(&template).unwrap();
        let mut batch = BatchConfig::new(template, 4);
        batch.starts.clear();
        match run_batch(&batch, &spec) {
            Err(SimError::InvalidBatch { reason }) => assert!(reason.contains("starts")),
            other => panic!("expected InvalidBatch, got {other:?}"),
        }
    }

    #[test]
    fn zero_episodes_is_a_typed_error() {
        let template = EpisodeConfig::paper_default(0);
        let spec = StackSpec::pure_teacher_conservative(&template).unwrap();
        let batch = BatchConfig::new(template, 0);
        assert!(matches!(
            run_batch(&batch, &spec),
            Err(SimError::InvalidBatch { .. })
        ));
    }

    #[test]
    fn summary_wrapper_records_timing() {
        let template = EpisodeConfig::paper_default(7);
        let spec = StackSpec::pure_teacher_conservative(&template).unwrap();
        let batch = BatchConfig::new(template, 2);
        let summary = run_batch_summary(&batch, &spec).unwrap();
        assert!(summary.wall_time_secs > 0.0);
        assert!(summary.episodes_per_sec > 0.0);
    }

    #[test]
    fn episodes_cycle_the_start_grid() {
        let batch = BatchConfig::new(EpisodeConfig::paper_default(0), 25);
        assert_eq!(batch.episode(0).other_start_shared, 50.5);
        assert_eq!(batch.episode(19).other_start_shared, 60.0);
        assert_eq!(batch.episode(20).other_start_shared, 50.5);
        assert_eq!(batch.episode(3).seed, 3);
    }
}
