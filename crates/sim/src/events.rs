//! Event-driven episode engine ([`crate::BatchMode::EventDriven`]).
//!
//! The fixed-step loop in [`crate::EpisodeWorkspace::run`] pays for every
//! vehicle pair on every control tick — broadcast, channel poll, sensor
//! read, estimator query — even after a conflicting vehicle has permanently
//! cleared the conflict zone and can no longer influence a single planner
//! decision. On long-horizon platoon workloads most pairs are quiescent
//! most of the time, so that cost dominates.
//!
//! This engine keeps the same outer tick clock (the ego must plan every
//! `Δt_c`; the paper's teacher policies pace on the per-tick window
//! estimates) but turns all *per-pair* work into scheduled events on a
//! time-ordered wheel:
//!
//! * **Message arrivals** are resolved at *send* time via
//!   [`cv_comm::Channel::send_scheduled`] and pushed onto a binary heap
//!   keyed by integer arrival tick — channels are never polled. A channel
//!   that cannot resolve its schedule ([`cv_comm::Arrival::Unknown`])
//!   demotes its pair to per-tick polling, preserving correctness for
//!   custom channel implementations.
//! * **Sensor reads** and **broadcasts** fire on their [`Cadence`], asked
//!   in the scheduling form ([`Cadence::next_at_or_after`]) rather than a
//!   per-tick modulo.
//! * **Retirement**: once a pair provably can no longer produce a non-empty
//!   turning window — its true position is past the scenario exit by a
//!   margin covering all sensor noise, no message is in flight, and its
//!   *current estimate* already places it past the exit in both the
//!   interval and nominal forms — the pair's estimate is frozen
//!   ([`crate::stack`]'s frozen pins) and every future event for it is
//!   cancelled. Quiescent spans for that pair then cost O(1) total instead
//!   of O(span/Δt_c).
//!
//! # Tie-break ordering contract
//!
//! Simultaneous events resolve in a documented, seed-independent order,
//! identical across thread counts and re-runs (`tests/event_core.rs`
//! property-checks this):
//!
//! 1. within one control tick, per pair: `MessageArrival` (all due
//!    arrivals) before `SensorRead` before the tick-wide
//!    `ControlDecision`/actuation;
//! 2. pairs are visited in index order (pair 0 = the primary `C_1`);
//! 3. within one pair and tick, message arrivals apply in send order
//!    (monotone `seq`, which equals stamp order for the constant-delay
//!    channels — exactly the per-drain stamp sort of the polled path).
//!
//! This is the same order the fixed-step loop produces implicitly, which is
//! what makes bit-identity possible at all.
//!
//! # When fixed-step remains the oracle
//!
//! The fixed-step engine is retained untouched as the reference: whenever
//! every cadence divides the integration step (the repo default:
//! `Δt_m = Δt_s = 2·Δt_c`), this engine must reproduce its
//! [`EpisodeResult`]s bit for bit — same outcome, same `η` bits, same
//! emergency counts. `tests/event_core.rs` enforces the matrix across
//! seeds, thread counts, and stacks; `scripts/tier1.sh` runs a smoke of it.
//! Traces are the one deliberate non-goal: this engine never records them
//! (retired pairs have no per-tick estimates to trace), so trace-consuming
//! experiments (Fig. 6) stay on fixed-step.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::AtomicBool;

use cv_comm::{Arrival, Message};
use safe_shield::{Outcome, PlannerSource, Scenario};

use crate::cadence::Cadence;
use crate::scheduler::for_each_dynamic;
use crate::supervise::{supervised_episode_with, BatchReport, EngineKind, Quarantine};
use crate::{BatchConfig, EpisodeConfig, EpisodeResult, EpisodeWorkspace, SimError, StackSpec};

/// One message scheduled on the wheel, ordered by `(tick, pair, seq)` —
/// the tie-break contract in the module docs. The payload does not
/// participate in the ordering (its floats are not `Ord`).
struct ScheduledArrival {
    /// Control tick at which the message becomes deliverable — the first
    /// tick whose poll the fixed-step loop would have drained it on.
    tick: u64,
    /// Receiving pair index.
    pair: usize,
    /// Monotone send counter; equals stamp order for constant-delay
    /// channels.
    seq: u64,
    /// The message itself.
    msg: Message,
}

impl ScheduledArrival {
    fn key(&self) -> (u64, usize, u64) {
        (self.tick, self.pair, self.seq)
    }
}

impl PartialEq for ScheduledArrival {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl Eq for ScheduledArrival {}

impl PartialOrd for ScheduledArrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ScheduledArrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Reusable event-engine state held by [`EpisodeWorkspace`], so the
/// per-step loop stays allocation-free in the steady state (the heap and
/// flag vectors keep their capacity across episodes).
#[derive(Default)]
pub(crate) struct EventScratch {
    /// Min-heap of scheduled arrivals (time wheel).
    heap: BinaryHeap<Reverse<ScheduledArrival>>,
    /// Monotone send counter feeding [`ScheduledArrival::seq`].
    seq: u64,
    /// Pairs permanently retired from event processing.
    retired: Vec<bool>,
    /// Scheduled arrivals currently on the wheel, per pair — a pair with
    /// messages in flight must not retire (the arrival could still move
    /// its estimate).
    inflight: Vec<u32>,
    /// Pairs demoted to per-tick channel polling ([`Arrival::Unknown`]).
    polled: Vec<bool>,
}

impl EventScratch {
    fn reset(&mut self, n: usize) {
        self.heap.clear();
        self.seq = 0;
        self.retired.clear();
        self.retired.resize(n, false);
        self.inflight.clear();
        self.inflight.resize(n, 0);
        self.polled.clear();
        self.polled.resize(n, false);
    }
}

/// The first control tick at or after `send_tick` whose poll would drain a
/// message delivered at `deliver_at` — the exact integerisation of the
/// fixed-step predicate `deliver_at <= tick·Δt_c + 1e-12`
/// (`cv_comm`'s `drain_due_into`). A closed-form `ceil` gives the guess;
/// the two correction loops absorb any one-ULP rounding slack so the two
/// engines can never disagree on a delivery tick.
fn arrival_tick(deliver_at: f64, send_tick: u64, dt_c: f64) -> u64 {
    let guess = ((deliver_at - 1e-12) / dt_c).ceil();
    let mut k = if guess > send_tick as f64 {
        guess as u64
    } else {
        send_tick
    };
    while (k as f64) * dt_c + 1e-12 < deliver_at {
        k += 1;
    }
    while k > send_tick && ((k - 1) as f64) * dt_c + 1e-12 >= deliver_at {
        k -= 1;
    }
    k
}

impl EpisodeWorkspace {
    /// Runs one episode on the event-driven engine. Bit-identical to
    /// [`EpisodeWorkspace::run`] whenever every cadence divides the control
    /// step (see the module docs); never records traces.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Scenario`] if the configuration is invalid.
    pub fn run_event(&mut self, cfg: &EpisodeConfig) -> Result<EpisodeResult, SimError> {
        match self.run_event_interruptible(cfg, None) {
            Ok(Some(result)) => Ok(result),
            Ok(None) => unreachable!("no interrupt flag was supplied"),
            Err(e) => Err(e),
        }
    }

    /// Like [`EpisodeWorkspace::run_event`], but checks `interrupt` at the
    /// top of every control step — the same step-granular cooperative stop
    /// as [`EpisodeWorkspace::run_interruptible`].
    pub fn run_event_interruptible(
        &mut self,
        cfg: &EpisodeConfig,
        interrupt: Option<&AtomicBool>,
    ) -> Result<Option<EpisodeResult>, SimError> {
        #[cfg(feature = "fault-injection")]
        if let StackSpec::PanicInjection { panic_seeds, .. } = self.spec() {
            assert!(
                !panic_seeds.contains(&cfg.seed),
                "injected planner fault for seed {}",
                cfg.seed
            );
        }
        let slot = self.scenario_slot(cfg)?;
        let ego_limits = self.cached_scenarios(slot)[0].ego_limits();
        let other_limits = self.cached_scenarios(slot)[0].other_limits();
        self.arm_vehicles(cfg, other_limits);

        let EpisodeWorkspace {
            spec,
            exec,
            scenario_cache,
            channels,
            sensors,
            drivers,
            others,
            inbox,
            events,
            ..
        } = self;
        let scenarios = scenario_cache[slot].1.as_slice();
        match exec {
            Some(e) => spec.reinit(e, cfg, scenarios, others),
            None => *exec = Some(spec.build(cfg, scenarios)),
        }
        let exec = exec.as_mut().expect("executor armed above");

        let n = others.len();
        events.reset(n);
        exec.arm_frozen(n);

        // Retirement soundness rests on position monotonicity: with
        // `v_min > 0` a vehicle past the exit can never re-enter the zone,
        // and a constant-speed-projected window can only move further past
        // it. Without that floor, pairs simply never retire (the engine
        // degrades to fixed-step cost, not to wrong answers).
        let retire_enabled = other_limits.v_min() > 0.0;
        // Truth margin before probing the estimate: past the exit by the
        // full sensor noise band (plus slack), every measurement and
        // message also lands past the exit, so the live estimate the
        // fixed-step engine keeps refining stays exit-side forever — which
        // is what makes the frozen pin bit-invisible.
        let truth_margin = 2.0 * cfg.noise.delta_p + 0.5;

        let mut ego = cfg.ego_init;
        let msg = Cadence::new(cfg.dt_m, cfg.dt_c);
        let sense = Cadence::new(cfg.dt_s, cfg.dt_c);
        let steps = (cfg.horizon / cfg.dt_c).ceil() as u64;
        // Next firing steps, maintained in the scheduling form.
        let mut next_msg = msg.next_at_or_after(0);
        let mut next_sense = sense.next_at_or_after(0);

        let mut emergency_steps = 0u64;
        let mut total_steps = 0u64;
        let mut outcome = Outcome::Timeout;
        let mut collided_pair = None;
        let mut active = n;

        for step in 0..=steps {
            if let Some(flag) = interrupt {
                if flag.load(std::sync::atomic::Ordering::Relaxed) {
                    return Ok(None);
                }
            }
            let t = step as f64 * cfg.dt_c;
            let msg_now = step == next_msg;
            if msg_now {
                next_msg = msg.next_at_or_after(step + 1);
            }
            let sense_now = step == next_sense;
            if sense_now {
                next_sense = sense.next_at_or_after(step + 1);
            }

            if active > 0 {
                for i in 0..n {
                    if events.retired[i] {
                        continue;
                    }
                    let other = &others[i];
                    if msg_now {
                        let m = Message::from_state(1 + i, t, other);
                        match channels[i].chan.send_scheduled(m, t) {
                            Arrival::Delivered(at) => {
                                let tick = arrival_tick(at, step, cfg.dt_c);
                                // Past-horizon arrivals would never be
                                // drained by the fixed-step loop either.
                                if tick <= steps {
                                    events.seq += 1;
                                    events.inflight[i] += 1;
                                    events.heap.push(Reverse(ScheduledArrival {
                                        tick,
                                        pair: i,
                                        seq: events.seq,
                                        msg: m,
                                    }));
                                }
                            }
                            Arrival::Dropped | Arrival::Never => {}
                            Arrival::Unknown => events.polled[i] = true,
                        }
                    }
                    // Deliveries due this tick for this pair: pairs are
                    // visited in index order, so everything at the top of
                    // the heap with (tick, pair) == (step, i) is due now.
                    while let Some(Reverse(top)) = events.heap.peek() {
                        if top.tick != step || top.pair != i {
                            break;
                        }
                        let Reverse(due) = events.heap.pop().expect("peeked above");
                        events.inflight[i] -= 1;
                        exec.estimator_mut(i).on_message(&due.msg);
                    }
                    if events.polled[i] {
                        inbox.clear();
                        channels[i].chan.receive_into(t, inbox);
                        for m in inbox.iter() {
                            exec.estimator_mut(i).on_message(m);
                        }
                    }
                    if sense_now {
                        // Dropout-free sensors keep the historical RNG
                        // stream (same rule as the fixed-step loop).
                        let maybe = if cfg.sensor_dropout > 0.0 {
                            sensors[i].try_measure(1 + i, t, other)
                        } else {
                            Some(sensors[i].measure(1 + i, t, other))
                        };
                        if let Some(m) = maybe {
                            exec.estimator_mut(i).on_measurement(&m);
                        }
                    }
                    // Retirement probe (module docs): truth past the exit
                    // beyond the noise band, nothing in flight, nothing
                    // polled, and the live estimate already exit-side in
                    // both the interval and nominal forms.
                    if retire_enabled
                        && !events.polled[i]
                        && events.inflight[i] == 0
                        && other.position >= scenarios[i].other_exit() + truth_margin
                    {
                        let est = exec.estimator_mut(i).estimate(t);
                        if est.position.lo() >= scenarios[i].other_exit()
                            && est.nominal.position >= scenarios[i].other_exit()
                        {
                            exec.set_frozen(i, est);
                            events.retired[i] = true;
                            active -= 1;
                        }
                    }
                }

                // Ground truth: a retired pair sits past the exit with
                // `v_min > 0`, so it can never satisfy `collision` again —
                // the scan covers exactly the still-active pairs, and the
                // fixed-step engine's full-width scan finds the same first
                // hit (a retired pair's check is always false).
                let mut hit = None;
                for (i, (s, other)) in scenarios.iter().zip(others.iter()).enumerate() {
                    if !events.retired[i] && s.collision(&ego, other) {
                        hit = Some(i);
                        break;
                    }
                }
                if let Some(hit) = hit {
                    outcome = Outcome::Collision { time: t };
                    collided_pair = Some(hit);
                    break;
                }
            }
            if scenarios[0].target_reached(t, &ego) {
                outcome = Outcome::Reached { time: t };
                break;
            }

            // The ego plans and steps every tick regardless of activity:
            // the teacher policies pace on the per-tick windows, so the
            // control decision itself is never a skippable event.
            let (decision, _est) = exec.plan(t, &ego);
            total_steps += 1;
            if decision.source == PlannerSource::Emergency {
                emergency_steps += 1;
            }
            ego = ego_limits.step(&ego, decision.accel, cfg.dt_c);
            if active > 0 {
                // Still-active followers gap-track their (possibly
                // retired) predecessors, so all vehicles advance together
                // until the last pair retires; after that nothing reads
                // their states again.
                crate::driver::actuate_others(cfg, other_limits, drivers, others, t);
            }
        }

        Ok(Some(EpisodeResult {
            eta: outcome.eta(),
            outcome,
            emergency_steps,
            total_steps,
            collided_pair,
            traces: None,
        }))
    }
}

/// Runs every episode of `batch` on the event-driven engine with the same
/// fault semantics as [`crate::run_batch_supervised`] (typed outcomes,
/// panic isolation, quarantine, step-granular interruption). This is the
/// [`crate::BatchMode::EventDriven`] entry point behind
/// [`crate::run_batch_lanes`].
///
/// # Errors
///
/// [`SimError::InvalidBatch`] when the batch configuration itself cannot be
/// run; per-episode faults are reported in the [`BatchReport`].
pub fn run_batch_event_driven(
    batch: &BatchConfig,
    spec: &StackSpec,
    quarantine: Option<&Quarantine>,
    interrupt: Option<&AtomicBool>,
) -> Result<BatchReport, SimError> {
    batch.validate()?;
    let outcomes = for_each_dynamic(
        batch.episodes,
        batch.worker_count(),
        || EpisodeWorkspace::new(spec.clone()),
        |ws, i| {
            let cfg = batch.episode(i);
            supervised_episode_with(EngineKind::EventDriven, ws, &cfg, quarantine, interrupt)
        },
    );
    Ok(BatchReport { outcomes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run_episode;

    fn bits(r: &EpisodeResult) -> (u64, String, u64, u64, Option<usize>) {
        (
            r.eta.to_bits(),
            format!("{:?}", r.outcome),
            r.emergency_steps,
            r.total_steps,
            r.collided_pair,
        )
    }

    #[test]
    fn arrival_tick_matches_the_polling_predicate() {
        let dt_c = 0.05;
        for send_tick in [0u64, 3, 17, 400] {
            for delay in [0.0, 0.05, 0.1, 0.25, 0.24999999, 0.0333] {
                let sent_at = send_tick as f64 * dt_c;
                let deliver_at = sent_at + delay;
                let k = arrival_tick(deliver_at, send_tick, dt_c);
                // First tick whose poll drains it…
                assert!(
                    (k as f64) * dt_c + 1e-12 >= deliver_at,
                    "tick {k} too early for {deliver_at}"
                );
                // …and no earlier poll (at or after the send) would have.
                assert!(
                    k == send_tick || ((k - 1) as f64) * dt_c + 1e-12 < deliver_at,
                    "tick {k} not minimal for {deliver_at}"
                );
            }
        }
    }

    #[test]
    fn event_engine_matches_fixed_step_on_the_paper_default() {
        for seed in 0..8 {
            let cfg = EpisodeConfig::paper_default(seed);
            let spec = StackSpec::pure_teacher_conservative(&cfg).unwrap();
            let fixed = run_episode(&cfg, &spec, false).unwrap();
            let event = EpisodeWorkspace::new(spec).run_event(&cfg).unwrap();
            assert_eq!(bits(&fixed), bits(&event), "seed {seed}");
        }
    }

    #[test]
    fn workspace_reuse_is_bit_invisible_to_the_event_engine() {
        let cfg = EpisodeConfig::paper_default(11);
        let spec = StackSpec::pure_teacher_conservative(&cfg).unwrap();
        let mut ws = EpisodeWorkspace::new(spec);
        let first = ws.run_event(&cfg).unwrap();
        let again = ws.run_event(&cfg).unwrap();
        assert_eq!(bits(&first), bits(&again));
        // Interleaving a fixed-step run must not perturb a later event run.
        let _ = ws.run(&cfg, false).unwrap();
        let third = ws.run_event(&cfg).unwrap();
        assert_eq!(bits(&first), bits(&third));
    }

    #[test]
    fn delayed_comm_matches_fixed_step() {
        for seed in 0..6 {
            let mut cfg = EpisodeConfig::paper_default(seed);
            cfg.comm = cv_comm::CommSetting::Delayed {
                delay: 0.25,
                drop_prob: 0.5,
            };
            let spec = StackSpec::pure_teacher_conservative(&cfg).unwrap();
            let fixed = run_episode(&cfg, &spec, false).unwrap();
            let event = EpisodeWorkspace::new(spec).run_event(&cfg).unwrap();
            assert_eq!(bits(&fixed), bits(&event), "seed {seed}");
        }
    }
}
