//! Shared broadcast/sensing cadence semantics.
//!
//! All three execution paths — the per-episode reference loop
//! ([`crate::EpisodeWorkspace::run`]), the lane-batched stepper
//! ([`crate::lanes`]), and the event-driven engine ([`crate::events`]) —
//! quantize the message period `Δt_m` and sensing period `Δt_s` onto the
//! control tick the same way: `every = round(period / Δt_c)`, clamped to at
//! least one tick, firing on step 0 and every `every` steps after. This
//! type is the single source of truth for that rule; the three engines
//! differ only in *how* they ask ([`Cadence::fires_at`] stateless,
//! [`Cadence::due`]/[`Cadence::advance`] as an incremental countdown, or
//! [`Cadence::next_at_or_after`] for event scheduling), never in *when* a
//! cadence fires.

/// A periodic cadence quantized to control ticks.
///
/// Fires on step 0 and every [`Cadence::every`] steps after. The countdown
/// form (`due`/`advance`) and the stateless form (`fires_at`) agree on
/// every step as long as `advance` is called exactly once per step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cadence {
    /// Firing period in control ticks (≥ 1).
    every: u64,
    /// `step % every`, maintained incrementally by [`Cadence::advance`] —
    /// the cadence check without a per-step hardware division (fires
    /// when 0).
    tick: u64,
}

impl Cadence {
    /// Quantizes `period` (s) onto control ticks of `dt_c` (s), rounding to
    /// the nearest tick and clamping to at least one.
    pub fn new(period: f64, dt_c: f64) -> Self {
        Self {
            every: (period / dt_c).round().max(1.0) as u64,
            tick: 0,
        }
    }

    /// Firing period in control ticks.
    #[cfg(test)]
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Whether the cadence fires at `step` (stateless form).
    pub fn fires_at(&self, step: u64) -> bool {
        step.is_multiple_of(self.every)
    }

    /// Whether the cadence fires at the countdown's current step.
    pub fn due(&self) -> bool {
        self.tick == 0
    }

    /// Advances the countdown by one step. Call exactly once per step to
    /// keep [`Cadence::due`] aligned with [`Cadence::fires_at`].
    pub fn advance(&mut self) {
        self.tick += 1;
        if self.tick == self.every {
            self.tick = 0;
        }
    }

    /// The first firing step at or after `step` (event scheduling form).
    pub fn next_at_or_after(&self, step: u64) -> u64 {
        step.div_ceil(self.every) * self.every
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_rounds_and_clamps() {
        assert_eq!(Cadence::new(0.1, 0.05).every(), 2);
        assert_eq!(Cadence::new(0.25, 0.05).every(), 5);
        // Rounding, not truncation: 0.24 / 0.05 = 4.8 → 5.
        assert_eq!(Cadence::new(0.24, 0.05).every(), 5);
        // A period below one tick clamps to every tick.
        assert_eq!(Cadence::new(0.01, 0.05).every(), 1);
        assert_eq!(Cadence::new(0.0, 0.05).every(), 1);
    }

    #[test]
    fn countdown_matches_stateless_form() {
        for period in [0.05, 0.1, 0.25, 0.3] {
            let stateless = Cadence::new(period, 0.05);
            let mut countdown = stateless;
            for step in 0..200 {
                assert_eq!(
                    countdown.due(),
                    stateless.fires_at(step),
                    "period {period} step {step}"
                );
                countdown.advance();
            }
        }
    }

    #[test]
    fn next_at_or_after_is_the_next_firing_step() {
        let c = Cadence::new(0.25, 0.05); // every 5 ticks
        assert_eq!(c.next_at_or_after(0), 0);
        assert_eq!(c.next_at_or_after(1), 5);
        assert_eq!(c.next_at_or_after(5), 5);
        assert_eq!(c.next_at_or_after(6), 10);
        for step in 0..100 {
            let next = c.next_at_or_after(step);
            assert!(next >= step && c.fires_at(next));
            assert!(!(step..next).any(|s| c.fires_at(s)));
        }
    }
}
