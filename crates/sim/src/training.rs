//! Behaviour-cloning pipeline: teacher rollouts → datasets → NN planners.
//!
//! The paper trains `κ_n,cons` and `κ_n,aggr` with the learning method of
//! its ref. [6]; per the substitution in `DESIGN.md`, we clone two analytic
//! [`TeacherPolicy`] presets instead. Rollouts run closed-loop under a mix
//! of communication settings so the NN sees the windows it will face at
//! deployment time.

use std::path::Path;

use cv_comm::{Channel, CommSetting, Message};
use cv_estimation::{Estimator, NaiveEstimator};
use cv_planner::{clone_behaviour, CloneConfig, Dataset, FeatureScaling, NnPlanner, TeacherPolicy};
use cv_rng::{Rng, SplitMix64};
use cv_sensing::UniformNoiseSensor;
use safe_shield::{Observation, Planner, Scenario};

use crate::{EpisodeConfig, SimError, WindowKind};

/// Training-pipeline errors.
#[derive(Debug)]
pub enum TrainError {
    /// Episode simulation failed.
    Sim(SimError),
    /// Network training failed.
    Nn(cv_nn::NnError),
    /// Reading/writing cached planner weights failed.
    Io(std::io::Error),
    /// A cached planner file was unparseable.
    Parse(String),
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::Sim(e) => write!(f, "simulation failed: {e}"),
            TrainError::Nn(e) => write!(f, "training failed: {e}"),
            TrainError::Io(e) => write!(f, "planner cache I/O failed: {e}"),
            TrainError::Parse(e) => write!(f, "cannot parse cached planner: {e}"),
        }
    }
}

impl std::error::Error for TrainError {}

impl From<SimError> for TrainError {
    fn from(e: SimError) -> Self {
        TrainError::Sim(e)
    }
}

impl From<left_turn::ScenarioError> for TrainError {
    fn from(e: left_turn::ScenarioError) -> Self {
        TrainError::Sim(SimError::from(e))
    }
}

impl From<cv_nn::NnError> for TrainError {
    fn from(e: cv_nn::NnError) -> Self {
        TrainError::Nn(e)
    }
}

impl From<std::io::Error> for TrainError {
    fn from(e: std::io::Error) -> Self {
        TrainError::Io(e)
    }
}

/// Hyperparameters of the full training pipeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainSetup {
    /// Closed-loop teacher rollouts per planner.
    pub rollout_episodes: usize,
    /// Master seed.
    pub seed: u64,
    /// Behaviour-cloning hyperparameters.
    pub clone: CloneConfig,
}

impl Default for TrainSetup {
    fn default() -> Self {
        Self {
            rollout_episodes: 240,
            seed: 7,
            clone: CloneConfig::default(),
        }
    }
}

impl TrainSetup {
    /// A tiny setup for unit tests (seconds instead of minutes in debug
    /// builds; the resulting planners are crude but functional).
    pub fn smoke() -> Self {
        Self {
            rollout_episodes: 24,
            seed: 7,
            clone: CloneConfig {
                epochs: 15,
                ..CloneConfig::default()
            },
        }
    }
}

/// Which planner personality to produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Personality {
    /// Clone of [`TeacherPolicy::conservative`] on Eq. 7 windows.
    Conservative,
    /// Clone of [`TeacherPolicy::aggressive`] on optimistic windows.
    Aggressive,
}

impl Personality {
    fn window_kind(&self) -> WindowKind {
        match self {
            Personality::Conservative => WindowKind::Conservative,
            Personality::Aggressive => WindowKind::Nominal,
        }
    }

    fn planner_name(&self) -> &'static str {
        match self {
            Personality::Conservative => "kappa_n_cons",
            Personality::Aggressive => "kappa_n_aggr",
        }
    }

    fn file_name(&self) -> &'static str {
        match self {
            Personality::Conservative => "kappa_n_cons.nnp",
            Personality::Aggressive => "kappa_n_aggr.nnp",
        }
    }
}

/// Rolls out the teacher closed-loop and collects `(observation, accel)`
/// pairs, cycling communication settings and initial positions for coverage.
///
/// # Errors
///
/// Returns [`TrainError::Sim`] if an episode configuration is invalid.
pub fn collect_teacher_dataset(
    setup: &TrainSetup,
    personality: Personality,
) -> Result<Dataset, TrainError> {
    let comm_mix = [
        CommSetting::NoDisturbance,
        CommSetting::Delayed {
            delay: 0.25,
            drop_prob: 0.25,
        },
        CommSetting::Lost,
    ];
    let starts = EpisodeConfig::paper_start_grid();
    let mut vary_rng = SplitMix64::seed_from_u64(setup.seed ^ 0xDA7A);
    let mut data = Dataset::new();

    for ep in 0..setup.rollout_episodes {
        let mut cfg = EpisodeConfig::paper_default(setup.seed.wrapping_add(ep as u64));
        cfg.comm = comm_mix[ep % comm_mix.len()];
        cfg.other_start_shared = starts[ep % starts.len()];
        // Randomise the start state a little so the clone generalises.
        cfg.ego_init.velocity = vary_rng.random_range(5.0..10.0);
        cfg.ego_init.position = -30.0 + vary_rng.random_range(-3.0..3.0);
        cfg.other_init_speed = vary_rng.random_range(8.0..12.0);
        rollout_into(&cfg, personality, &mut data)?;
    }
    Ok(data)
}

/// Rolls out one teacher episode, appending samples to `data`.
fn rollout_into(
    cfg: &EpisodeConfig,
    personality: Personality,
    data: &mut Dataset,
) -> Result<(), TrainError> {
    let scenario = cfg.scenario()?;
    let mut teacher = match personality {
        Personality::Conservative => TeacherPolicy::conservative(&scenario),
        Personality::Aggressive => TeacherPolicy::aggressive(&scenario),
    };
    let window_kind = personality.window_kind();
    let ego_limits = scenario.ego_limits();
    let other_limits = scenario.other_limits();

    let mut ego = cfg.ego_init;
    let mut other = cfg.other_init();
    let mut estimator = NaiveEstimator::new(other_limits, 0.0, other);
    let mut channel = cfg.comm.channel(cfg.seed_channel());
    let mut sensor = UniformNoiseSensor::new(cfg.noise, cfg.seed_sensor());
    let mut driving_rng = SplitMix64::seed_from_u64(cfg.seed_driving());

    let msg_every = (cfg.dt_m / cfg.dt_c).round().max(1.0) as u64;
    let sense_every = (cfg.dt_s / cfg.dt_c).round().max(1.0) as u64;
    let steps = (cfg.horizon / cfg.dt_c).ceil() as u64;

    for step in 0..=steps {
        let t = step as f64 * cfg.dt_c;
        if step % msg_every == 0 {
            channel.send(Message::from_state(1, t, &other), t);
        }
        for msg in channel.receive(t) {
            estimator.on_message(&msg);
        }
        if step % sense_every == 0 {
            estimator.on_measurement(&sensor.measure(1, t, &other));
        }
        if scenario.collision(&ego, &other) || scenario.target_reached(t, &ego) {
            break;
        }
        let est = estimator.estimate(t);
        let window = match window_kind {
            WindowKind::Conservative => scenario.conservative_window(t, &est),
            WindowKind::Nominal => scenario.nominal_window(t, &est),
        };
        let obs = Observation::new(t, ego, window);
        let accel = teacher.plan(&obs);
        data.push(obs, accel);
        ego = ego_limits.step(&ego, accel, cfg.dt_c);
        let a1 = driving_rng.random_range(other_limits.a_min()..=other_limits.a_max());
        other = other_limits.step(&other, a1, cfg.dt_c);
    }
    Ok(())
}

/// Trains one planner personality from scratch.
///
/// # Errors
///
/// Returns a [`TrainError`] if rollout or fitting fails.
pub fn train_planner(
    setup: &TrainSetup,
    personality: Personality,
) -> Result<NnPlanner, TrainError> {
    let data = collect_teacher_dataset(setup, personality)?;
    let scenario = EpisodeConfig::paper_default(0).scenario()?;
    let (planner, _loss) = clone_behaviour(
        &data,
        scenario.ego_limits(),
        FeatureScaling::left_turn(),
        CloneConfig {
            seed: setup.seed,
            ..setup.clone
        },
        personality.planner_name(),
    )?;
    Ok(planner)
}

/// Trains (or loads from `cache_dir`) the paper's two NN planners,
/// `(κ_n,cons, κ_n,aggr)`.
///
/// Training is deterministic in `setup`, so the cache is just an
/// accelerator; delete the directory to force retraining.
///
/// # Errors
///
/// Returns a [`TrainError`] on training or cache-I/O failure.
pub fn load_or_train_planners(
    cache_dir: &Path,
    setup: &TrainSetup,
) -> Result<(NnPlanner, NnPlanner), TrainError> {
    std::fs::create_dir_all(cache_dir)?;
    let mut planners = Vec::with_capacity(2);
    for personality in [Personality::Conservative, Personality::Aggressive] {
        let path = cache_dir.join(personality.file_name());
        let planner = if path.exists() {
            NnPlanner::from_text(&std::fs::read_to_string(&path)?).map_err(TrainError::Parse)?
        } else {
            let p = train_planner(setup, personality)?;
            std::fs::write(&path, p.to_text())?;
            p
        };
        planners.push(planner);
    }
    let aggr = planners.pop().expect("two planners");
    let cons = planners.pop().expect("two planners");
    Ok((cons, aggr))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_episode, StackSpec};

    #[test]
    fn dataset_collection_produces_samples() {
        let setup = TrainSetup {
            rollout_episodes: 3,
            ..TrainSetup::smoke()
        };
        let data = collect_teacher_dataset(&setup, Personality::Conservative).unwrap();
        assert!(data.len() > 100, "only {} samples", data.len());
    }

    #[test]
    fn smoke_trained_conservative_planner_mostly_reaches() {
        let planner = train_planner(&TrainSetup::smoke(), Personality::Conservative).unwrap();
        let mut reached = 0;
        let n = 10;
        for seed in 0..n {
            let cfg = EpisodeConfig::paper_default(1000 + seed);
            let spec = StackSpec::PureNn {
                planner: planner.clone(),
                window: WindowKind::Conservative,
            };
            let r = run_episode(&cfg, &spec, false).unwrap();
            if r.outcome.reaching_time().is_some() {
                reached += 1;
            }
        }
        assert!(reached >= n / 2, "only {reached}/{n} reached");
    }

    #[test]
    fn cache_roundtrip() {
        let dir = std::env::temp_dir().join(format!("safe-cv-test-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let setup = TrainSetup {
            rollout_episodes: 2,
            clone: CloneConfig {
                epochs: 2,
                ..CloneConfig::default()
            },
            ..TrainSetup::smoke()
        };
        let (cons1, aggr1) = load_or_train_planners(&dir, &setup).unwrap();
        // Second call loads from cache and must be identical.
        let (cons2, aggr2) = load_or_train_planners(&dir, &setup).unwrap();
        assert_eq!(cons1, cons2);
        assert_eq!(aggr1, aggr2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
