//! Supervised (fault-isolated) batch execution.
//!
//! The plain batch path ([`crate::run_batch`]) is all-or-nothing: one
//! panicking planner or one invalid episode poisons the whole batch. This
//! module wraps every episode in [`std::panic::catch_unwind`] and maps each
//! one to a typed [`EpisodeOutcome`], so a batch degrades the way the
//! paper's planner does under disturbance — bounded, typed, partial:
//!
//! * a panic is contained to its episode ([`EpisodeOutcome::Panicked`]); the
//!   worker rebuilds its [`EpisodeWorkspace`] from the spec and continues,
//! * a typed simulation error is contained to its episode
//!   ([`EpisodeOutcome::Failed`]),
//! * seeds that keep panicking are quarantined after a configurable budget
//!   ([`Quarantine`]) instead of being retried forever,
//! * an interrupt flag (cancellation, deadline expiry) stops the batch at
//!   episode-*step* granularity; episodes not yet resolved come back as
//!   [`EpisodeOutcome::Skipped`].
//!
//! The invariant that makes partial results trustworthy: **episodes that
//! complete under supervision are bit-identical to a clean run** of the same
//! seeds. Supervision never changes what an episode computes — only what
//! happens to the batch around it when an episode dies.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::metrics::summarise;
use crate::scheduler::for_each_dynamic;
use crate::{
    BatchConfig, BatchSummary, EpisodeConfig, EpisodeResult, EpisodeWorkspace, SimError, StackSpec,
};

/// Why an episode was skipped without producing a result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkipReason {
    /// The seed exhausted its [`Quarantine`] panic budget before this run.
    Quarantined {
        /// Panics recorded against the seed when it was skipped.
        panics: u32,
    },
    /// The batch was interrupted (cancellation or deadline expiry) before
    /// this episode resolved.
    Interrupted,
}

/// Terminal state of one episode under supervision.
#[derive(Debug, Clone, PartialEq)]
pub enum EpisodeOutcome {
    /// The episode ran to its ground-truth outcome; bit-identical to a
    /// clean (unsupervised) run of the same seed.
    Completed(EpisodeResult),
    /// The episode returned a typed simulation error.
    Failed {
        /// The episode seed.
        seed: u64,
        /// The error it returned.
        error: SimError,
    },
    /// The episode's planner panicked; the panic was contained to this
    /// episode and the worker's workspace was rebuilt.
    Panicked {
        /// The episode seed.
        seed: u64,
        /// The panic payload, stringified.
        payload: String,
    },
    /// The episode never ran (or was abandoned mid-flight by an interrupt).
    Skipped {
        /// The episode seed.
        seed: u64,
        /// Why it was skipped.
        reason: SkipReason,
    },
}

impl EpisodeOutcome {
    /// The episode's result, when it completed.
    pub fn completed(&self) -> Option<&EpisodeResult> {
        match self {
            EpisodeOutcome::Completed(r) => Some(r),
            _ => None,
        }
    }

    /// The seed of the episode this outcome describes (the completed
    /// variant carries the result, not the seed, so it is not recoverable
    /// here).
    pub fn seed(&self) -> Option<u64> {
        match self {
            EpisodeOutcome::Completed(_) => None,
            EpisodeOutcome::Failed { seed, .. }
            | EpisodeOutcome::Panicked { seed, .. }
            | EpisodeOutcome::Skipped { seed, .. } => Some(*seed),
        }
    }
}

/// Repeat-offender tracker: a seed that panics [`Quarantine::budget`] times
/// is skipped (with [`SkipReason::Quarantined`]) instead of being run again.
///
/// Shared across jobs by reference; all methods take `&self`.
#[derive(Debug)]
pub struct Quarantine {
    budget: u32,
    counts: Mutex<HashMap<u64, u32>>,
}

impl Quarantine {
    /// A quarantine allowing `budget` panics per seed (minimum 1) before
    /// skipping it.
    pub fn new(budget: u32) -> Self {
        Quarantine {
            budget: budget.max(1),
            counts: Mutex::new(HashMap::new()),
        }
    }

    /// The configured per-seed panic budget.
    pub fn budget(&self) -> u32 {
        self.budget
    }

    /// Records one panic against `seed`, returning the updated count.
    pub fn record_panic(&self, seed: u64) -> u32 {
        let mut counts = self.counts.lock().expect("quarantine poisoned");
        let n = counts.entry(seed).or_insert(0);
        *n += 1;
        *n
    }

    /// Panics recorded against `seed` so far.
    pub fn panics(&self, seed: u64) -> u32 {
        self.counts
            .lock()
            .expect("quarantine poisoned")
            .get(&seed)
            .copied()
            .unwrap_or(0)
    }

    /// `Some(count)` when `seed` has exhausted its budget and must be
    /// skipped.
    pub fn is_quarantined(&self, seed: u64) -> Option<u32> {
        let n = self.panics(seed);
        (n >= self.budget).then_some(n)
    }
}

/// Everything a supervised batch run observed, in episode-index order.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// One outcome per requested episode, index-aligned with the batch.
    pub outcomes: Vec<EpisodeOutcome>,
}

impl BatchReport {
    /// Episodes that completed.
    pub fn completed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.completed().is_some())
            .count()
    }

    /// Aggregate statistics over the *completed* episodes, with the fault
    /// counts filled in. Empty-safe: a report with zero completed episodes
    /// yields `NaN` means, never a panic.
    pub fn summary(&self) -> BatchSummary {
        let mut summary = summarise(self.outcomes.iter().filter_map(|o| o.completed()));
        summary.requested = self.outcomes.len();
        for outcome in &self.outcomes {
            match outcome {
                EpisodeOutcome::Completed(_) => {}
                EpisodeOutcome::Failed { .. } => summary.failed += 1,
                EpisodeOutcome::Panicked { .. } => summary.panicked += 1,
                EpisodeOutcome::Skipped { .. } => summary.skipped += 1,
            }
        }
        summary
    }

    /// Collapses the report back to the strict all-or-nothing contract of
    /// [`crate::run_batch`]: the completed results in index order, the
    /// first per-episode error, or — for a panicked episode — the original
    /// panic re-raised.
    ///
    /// # Errors
    ///
    /// The first [`EpisodeOutcome::Failed`] error, in index order.
    ///
    /// # Panics
    ///
    /// Re-raises the first contained panic, and panics on a skipped episode
    /// (a report produced without quarantine or interrupts never has one).
    pub fn into_results(self) -> Result<Vec<EpisodeResult>, SimError> {
        let mut results = Vec::with_capacity(self.outcomes.len());
        for outcome in self.outcomes {
            match outcome {
                EpisodeOutcome::Completed(r) => results.push(r),
                EpisodeOutcome::Failed { error, .. } => return Err(error),
                EpisodeOutcome::Panicked { seed, payload } => {
                    panic!("episode seed {seed} panicked: {payload}")
                }
                EpisodeOutcome::Skipped { seed, reason } => {
                    panic!("episode seed {seed} skipped in a strict batch: {reason:?}")
                }
            }
        }
        Ok(results)
    }
}

/// Which episode engine a supervised run drives.
///
/// Both engines produce bit-identical [`EpisodeResult`]s whenever every
/// cadence divides the control step (see `DESIGN.md` §18 and
/// [`crate::events`]); the choice is purely about throughput.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// The reference fixed-step loop ([`EpisodeWorkspace::run`]) — the
    /// bit-identity oracle every other engine is checked against.
    #[default]
    FixedStep,
    /// The event-driven engine ([`EpisodeWorkspace::run_event`]): skips
    /// quiescent per-pair work once a conflicting vehicle has permanently
    /// cleared the conflict zone. Never records traces.
    EventDriven,
}

impl EpisodeWorkspace {
    /// Runs one episode with panic isolation: a panic anywhere inside the
    /// episode is caught, the workspace is rebuilt from its spec (the only
    /// state a panic can corrupt), and the caller gets a typed
    /// [`EpisodeOutcome`] instead of an unwind.
    pub fn run_supervised(
        &mut self,
        cfg: &EpisodeConfig,
        record_traces: bool,
        interrupt: Option<&AtomicBool>,
    ) -> EpisodeOutcome {
        self.run_supervised_with(EngineKind::FixedStep, cfg, record_traces, interrupt)
    }

    /// [`EpisodeWorkspace::run_supervised`] on a caller-chosen engine.
    /// `record_traces` only applies to [`EngineKind::FixedStep`]; the
    /// event-driven engine never records traces.
    pub fn run_supervised_with(
        &mut self,
        engine: EngineKind,
        cfg: &EpisodeConfig,
        record_traces: bool,
        interrupt: Option<&AtomicBool>,
    ) -> EpisodeOutcome {
        // AssertUnwindSafe: on the panic path the workspace is replaced
        // wholesale below, so no torn state can leak out of the catch.
        let run = catch_unwind(AssertUnwindSafe(|| match engine {
            EngineKind::FixedStep => self.run_interruptible(cfg, record_traces, interrupt),
            EngineKind::EventDriven => self.run_event_interruptible(cfg, interrupt),
        }));
        match run {
            Ok(Ok(Some(result))) => EpisodeOutcome::Completed(result),
            Ok(Ok(None)) => EpisodeOutcome::Skipped {
                seed: cfg.seed,
                reason: SkipReason::Interrupted,
            },
            Ok(Err(error)) => EpisodeOutcome::Failed {
                seed: cfg.seed,
                error,
            },
            Err(payload) => {
                let spec = self.spec().clone();
                *self = EpisodeWorkspace::new(spec);
                EpisodeOutcome::Panicked {
                    seed: cfg.seed,
                    payload: payload_string(payload.as_ref()),
                }
            }
        }
    }
}

pub(crate) fn payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs every episode of `batch` under supervision (see the module docs),
/// over the batch's configured worker count.
///
/// `quarantine` (when given) is consulted before each episode and updated
/// on each contained panic; `interrupt` (when given) stops the batch at
/// episode-step granularity.
///
/// # Errors
///
/// [`SimError::InvalidBatch`] when the batch configuration itself cannot be
/// run; per-episode faults are reported in the [`BatchReport`], never as an
/// error.
pub fn run_batch_supervised(
    batch: &BatchConfig,
    spec: &StackSpec,
    quarantine: Option<&Quarantine>,
    interrupt: Option<&AtomicBool>,
) -> Result<BatchReport, SimError> {
    batch.validate()?;
    let outcomes = for_each_dynamic(
        batch.episodes,
        batch.worker_count(),
        || EpisodeWorkspace::new(spec.clone()),
        |ws, i| {
            let cfg = batch.episode(i);
            supervised_episode(ws, &cfg, quarantine, interrupt)
        },
    );
    Ok(BatchReport { outcomes })
}

/// One supervised episode: quarantine check, interrupt check, isolated run,
/// quarantine bookkeeping. Shared by [`run_batch_supervised`] and the
/// cv-server sharded worker so both layers have identical fault semantics.
pub fn supervised_episode(
    ws: &mut EpisodeWorkspace,
    cfg: &EpisodeConfig,
    quarantine: Option<&Quarantine>,
    interrupt: Option<&AtomicBool>,
) -> EpisodeOutcome {
    supervised_episode_with(EngineKind::FixedStep, ws, cfg, quarantine, interrupt)
}

/// [`supervised_episode`] on a caller-chosen engine — the shared primitive
/// behind both the fixed-step and event-driven batch paths.
pub fn supervised_episode_with(
    engine: EngineKind,
    ws: &mut EpisodeWorkspace,
    cfg: &EpisodeConfig,
    quarantine: Option<&Quarantine>,
    interrupt: Option<&AtomicBool>,
) -> EpisodeOutcome {
    if interrupt.is_some_and(|f| f.load(Ordering::Relaxed)) {
        return EpisodeOutcome::Skipped {
            seed: cfg.seed,
            reason: SkipReason::Interrupted,
        };
    }
    if let Some(panics) = quarantine.and_then(|q| q.is_quarantined(cfg.seed)) {
        return EpisodeOutcome::Skipped {
            seed: cfg.seed,
            reason: SkipReason::Quarantined { panics },
        };
    }
    let outcome = ws.run_supervised_with(engine, cfg, false, interrupt);
    if let (EpisodeOutcome::Panicked { seed, .. }, Some(q)) = (&outcome, quarantine) {
        q.record_panic(*seed);
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EpisodeConfig;

    fn small_batch(seed: u64, episodes: usize) -> BatchConfig {
        BatchConfig::new(EpisodeConfig::paper_default(seed), episodes)
    }

    #[test]
    fn clean_supervised_run_matches_strict_run_batch() {
        let batch = small_batch(5, 6);
        let spec = StackSpec::pure_teacher_conservative(&batch.template).unwrap();
        let strict = crate::run_batch(&batch, &spec).unwrap();
        let report = run_batch_supervised(&batch, &spec, None, None).unwrap();
        assert_eq!(report.completed(), 6);
        let supervised = report.into_results().unwrap();
        assert_eq!(strict, supervised, "supervision changed episode results");
    }

    #[test]
    fn summary_counts_and_is_empty_safe() {
        let report = BatchReport {
            outcomes: vec![
                EpisodeOutcome::Skipped {
                    seed: 1,
                    reason: SkipReason::Interrupted,
                },
                EpisodeOutcome::Failed {
                    seed: 2,
                    error: SimError::InvalidBatch {
                        reason: "synthetic".into(),
                    },
                },
                EpisodeOutcome::Panicked {
                    seed: 3,
                    payload: "boom".into(),
                },
            ],
        };
        let s = report.summary();
        assert_eq!(
            (s.requested, s.episodes, s.failed, s.panicked, s.skipped),
            (3, 0, 1, 1, 1)
        );
        assert!(s.eta_mean.is_nan(), "no completed episodes → NaN mean");
        assert!(s.etas.is_empty());
    }

    #[test]
    fn per_episode_scenario_error_is_contained() {
        // One unreachable start position fails its episodes; supervision
        // reports them per-episode instead of aborting the batch.
        let mut batch = small_batch(3, 4);
        batch.starts = vec![batch.starts[0], 10.0];
        let spec = StackSpec::pure_teacher_conservative(&batch.template).unwrap();
        let report = run_batch_supervised(&batch, &spec, None, None).unwrap();
        let s = report.summary();
        assert_eq!((s.requested, s.episodes, s.failed), (4, 2, 2));
        assert!(matches!(
            &report.outcomes[1],
            EpisodeOutcome::Failed {
                error: SimError::Scenario(_),
                ..
            }
        ));
    }

    #[test]
    fn quarantine_counts_and_trips_at_budget() {
        let q = Quarantine::new(2);
        assert_eq!(q.budget(), 2);
        assert_eq!(q.is_quarantined(7), None);
        assert_eq!(q.record_panic(7), 1);
        assert_eq!(q.is_quarantined(7), None, "one panic is under budget");
        assert_eq!(q.record_panic(7), 2);
        assert_eq!(q.is_quarantined(7), Some(2));
        assert_eq!(q.is_quarantined(8), None, "other seeds unaffected");
        assert_eq!(Quarantine::new(0).budget(), 1, "budget floor is one");
    }

    #[test]
    fn interrupt_set_up_front_skips_every_episode() {
        let batch = small_batch(1, 4);
        let spec = StackSpec::pure_teacher_conservative(&batch.template).unwrap();
        let stop = AtomicBool::new(true);
        let report = run_batch_supervised(&batch, &spec, None, Some(&stop)).unwrap();
        assert_eq!(report.completed(), 0);
        assert!(report.outcomes.iter().all(|o| matches!(
            o,
            EpisodeOutcome::Skipped {
                reason: SkipReason::Interrupted,
                ..
            }
        )));
        let s = report.summary();
        assert_eq!((s.requested, s.skipped), (4, 4));
    }

    #[cfg(feature = "fault-injection")]
    mod fault_injection {
        use super::*;

        #[test]
        fn panicking_seed_is_isolated_and_survivors_are_bit_identical() {
            let batch = small_batch(40, 8);
            let spec = StackSpec::pure_teacher_conservative(&batch.template).unwrap();
            let clean = crate::run_batch(&batch, &spec).unwrap();

            // Panic on episodes 2 and 5 (seed = base_seed + index).
            let seeds = vec![batch.base_seed + 2, batch.base_seed + 5];
            let faulty = StackSpec::panic_injection(&batch.template, seeds).unwrap();
            let report = run_batch_supervised(&batch, &faulty, None, None).unwrap();
            let s = report.summary();
            assert_eq!((s.requested, s.episodes, s.panicked), (8, 6, 2));
            for (i, outcome) in report.outcomes.iter().enumerate() {
                match outcome {
                    EpisodeOutcome::Panicked { seed, payload } => {
                        assert!(i == 2 || i == 5, "unexpected panic at index {i}");
                        assert_eq!(*seed, batch.base_seed + i as u64);
                        assert!(payload.contains("injected planner fault"));
                    }
                    EpisodeOutcome::Completed(r) => {
                        // The survivor is bit-identical to the clean run —
                        // the workspace rebuild after a panic is invisible.
                        assert_eq!(r, &clean[i], "index {i} diverged");
                        assert_eq!(r.eta.to_bits(), clean[i].eta.to_bits());
                    }
                    other => panic!("unexpected outcome at index {i}: {other:?}"),
                }
            }

            // Same-seed rerun is byte-identical, including the faults.
            let rerun = run_batch_supervised(&batch, &faulty, None, None).unwrap();
            assert_eq!(report, rerun);
        }

        #[test]
        fn quarantine_skips_repeat_offenders_across_runs() {
            let batch = small_batch(60, 4);
            let seeds = vec![batch.base_seed];
            let faulty = StackSpec::panic_injection(&batch.template, seeds).unwrap();
            let q = Quarantine::new(2);
            for run in 0..2 {
                let report = run_batch_supervised(&batch, &faulty, Some(&q), None).unwrap();
                let s = report.summary();
                assert_eq!((s.panicked, s.skipped), (1, 0), "run {run}");
            }
            // Budget exhausted: the seed is now skipped, not retried.
            let report = run_batch_supervised(&batch, &faulty, Some(&q), None).unwrap();
            assert!(matches!(
                &report.outcomes[0],
                EpisodeOutcome::Skipped {
                    reason: SkipReason::Quarantined { panics: 2 },
                    ..
                }
            ));
            let s = report.summary();
            assert_eq!((s.episodes, s.panicked, s.skipped), (3, 0, 1));
        }
    }
}
