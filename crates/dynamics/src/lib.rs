//! 1-D longitudinal vehicle dynamics substrate.
//!
//! This crate implements the vehicle model from Section II-A of the paper
//! *"A Safety-Guaranteed Framework for Neural-Network-Based Planners in
//! Connected Vehicles under Communication Disturbance"* (DATE 2023):
//! a discrete-time double integrator
//!
//! ```text
//! p(t + Δt) = p(t) + v(t)·Δt + ½·a(t)·Δt²
//! v(t + Δt) = v(t) + a(t)·Δt
//! ```
//!
//! extended with actuation and velocity limits ([`VehicleLimits`]). Velocity
//! saturation is handled *exactly* (the position update accounts for the
//! partial-acceleration segment before the velocity clamps), so that the
//! closed-form reachability analysis in `cv-estimation` (paper Eq. 2) is a
//! sound over-approximation of the simulated motion.
//!
//! # Example
//!
//! ```
//! use cv_dynamics::{VehicleLimits, VehicleState};
//!
//! let limits = VehicleLimits::new(0.0, 12.0, -6.0, 3.0)?;
//! let start = VehicleState::new(-30.0, 8.0, 0.0);
//! let next = limits.step(&start, 3.0, 0.05);
//! assert!(next.position > start.position);
//! assert!(next.velocity > start.velocity);
//! # Ok::<(), cv_dynamics::LimitsError>(())
//! ```

mod limits;
mod state;
mod trajectory;

pub use limits::{LimitsError, VehicleLimits};
pub use state::VehicleState;
pub use trajectory::{Trajectory, TrajectorySample};

/// Braking distance of a vehicle travelling at `velocity` under maximum
/// braking `a_min` (which must be negative): `d_b = −v² / (2·a_min)`.
///
/// This is the `d_b` term in the slack definition (paper Eq. 5).
///
/// # Panics
///
/// Panics in debug builds if `a_min >= 0.0`.
///
/// # Example
///
/// ```
/// let d = cv_dynamics::braking_distance(8.0, -4.0);
/// assert!((d - 8.0).abs() < 1e-12);
/// ```
pub fn braking_distance(velocity: f64, a_min: f64) -> f64 {
    debug_assert!(a_min < 0.0, "a_min must be negative, got {a_min}");
    -0.5 * velocity * velocity / a_min
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn braking_distance_matches_kinematics() {
        // v = 10 m/s, a = -5 m/s^2 -> stops in 2 s covering 10 m.
        assert!((braking_distance(10.0, -5.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn braking_distance_zero_speed() {
        assert_eq!(braking_distance(0.0, -3.0), 0.0);
    }
}
