use crate::VehicleState;

/// One time-stamped sample of a vehicle trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectorySample {
    /// Simulation time of the sample, in seconds.
    pub time: f64,
    /// Vehicle state at that time.
    pub state: VehicleState,
}

/// A recorded vehicle trajectory: a time-ordered sequence of samples.
///
/// Used by the simulator to record episodes, by the information-filter
/// experiments (paper Fig. 6a) to compare measured/filtered/true signals,
/// and by tests to check invariants along whole runs.
///
/// # Example
///
/// ```
/// use cv_dynamics::{Trajectory, VehicleState};
///
/// let mut traj = Trajectory::new();
/// traj.push(0.0, VehicleState::new(0.0, 5.0, 0.0));
/// traj.push(0.1, VehicleState::new(0.5, 5.0, 0.0));
/// assert_eq!(traj.len(), 2);
/// assert_eq!(traj.duration(), 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trajectory {
    samples: Vec<TrajectorySample>,
}

impl Trajectory {
    /// Creates an empty trajectory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty trajectory with room for `capacity` samples.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            samples: Vec::with_capacity(capacity),
        }
    }

    /// Appends a sample at `time`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `time` is not strictly greater than the
    /// previous sample's time.
    pub fn push(&mut self, time: f64, state: VehicleState) {
        if let Some(last) = self.samples.last() {
            debug_assert!(
                time > last.time,
                "trajectory samples must be strictly time-ordered ({time} <= {})",
                last.time
            );
        }
        self.samples.push(TrajectorySample { time, state });
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Time span covered by the trajectory (0 for fewer than two samples).
    pub fn duration(&self) -> f64 {
        match (self.samples.first(), self.samples.last()) {
            (Some(first), Some(last)) => last.time - first.time,
            _ => 0.0,
        }
    }

    /// The first sample, if any.
    pub fn first(&self) -> Option<&TrajectorySample> {
        self.samples.first()
    }

    /// The last sample, if any.
    pub fn last(&self) -> Option<&TrajectorySample> {
        self.samples.last()
    }

    /// Iterates over samples in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, TrajectorySample> {
        self.samples.iter()
    }

    /// Returns the sample with the greatest time `<= time`, if any.
    pub fn sample_at(&self, time: f64) -> Option<&TrajectorySample> {
        match self
            .samples
            .binary_search_by(|s| s.time.partial_cmp(&time).expect("non-NaN times"))
        {
            Ok(i) => Some(&self.samples[i]),
            Err(0) => None,
            Err(i) => Some(&self.samples[i - 1]),
        }
    }

    /// Consumes the trajectory and returns the raw samples.
    pub fn into_inner(self) -> Vec<TrajectorySample> {
        self.samples
    }
}

impl<'a> IntoIterator for &'a Trajectory {
    type Item = &'a TrajectorySample;
    type IntoIter = std::slice::Iter<'a, TrajectorySample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.iter()
    }
}

impl IntoIterator for Trajectory {
    type Item = TrajectorySample;
    type IntoIter = std::vec::IntoIter<TrajectorySample>;

    fn into_iter(self) -> Self::IntoIter {
        self.samples.into_iter()
    }
}

impl FromIterator<TrajectorySample> for Trajectory {
    fn from_iter<I: IntoIterator<Item = TrajectorySample>>(iter: I) -> Self {
        Self {
            samples: iter.into_iter().collect(),
        }
    }
}

impl Extend<TrajectorySample> for Trajectory {
    fn extend<I: IntoIterator<Item = TrajectorySample>>(&mut self, iter: I) {
        self.samples.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traj() -> Trajectory {
        let mut t = Trajectory::new();
        t.push(0.0, VehicleState::new(0.0, 1.0, 0.0));
        t.push(0.1, VehicleState::new(0.1, 1.0, 0.0));
        t.push(0.2, VehicleState::new(0.2, 1.0, 0.0));
        t
    }

    #[test]
    fn duration_and_len() {
        let t = traj();
        assert_eq!(t.len(), 3);
        assert!((t.duration() - 0.2).abs() < 1e-12);
        assert!(!t.is_empty());
        assert!(Trajectory::new().is_empty());
        assert_eq!(Trajectory::new().duration(), 0.0);
    }

    #[test]
    fn sample_at_returns_floor_sample() {
        let t = traj();
        assert!(t.sample_at(-0.05).is_none());
        assert_eq!(t.sample_at(0.0).unwrap().time, 0.0);
        assert_eq!(t.sample_at(0.15).unwrap().time, 0.1);
        assert_eq!(t.sample_at(5.0).unwrap().time, 0.2);
    }

    #[test]
    fn collect_roundtrip() {
        let t = traj();
        let copy: Trajectory = t.iter().copied().collect();
        assert_eq!(copy, t);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_order_push_panics() {
        let mut t = traj();
        t.push(0.05, VehicleState::at_rest());
    }
}
