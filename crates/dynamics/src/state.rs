/// Kinematic state of a single vehicle on its 1-D longitudinal axis.
///
/// Positions are in metres, velocities in m/s, accelerations in m/s².
/// The acceleration stored here is the *last applied* control input; it is
/// what gets broadcast in V2V messages (paper Section II-A, "Message").
///
/// # Example
///
/// ```
/// use cv_dynamics::VehicleState;
///
/// let s = VehicleState::new(-30.0, 8.0, 0.0);
/// assert_eq!(s.position, -30.0);
/// assert_eq!(s.velocity, 8.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VehicleState {
    /// Longitudinal position `p(t)` in metres.
    pub position: f64,
    /// Longitudinal velocity `v(t)` in m/s.
    pub velocity: f64,
    /// Last applied acceleration `a(t)` in m/s².
    pub acceleration: f64,
}

impl VehicleState {
    /// Creates a new state from position, velocity and acceleration.
    pub fn new(position: f64, velocity: f64, acceleration: f64) -> Self {
        Self {
            position,
            velocity,
            acceleration,
        }
    }

    /// A state at rest at the origin.
    pub fn at_rest() -> Self {
        Self::default()
    }

    /// Returns `true` if every component is finite.
    pub fn is_finite(&self) -> bool {
        self.position.is_finite() && self.velocity.is_finite() && self.acceleration.is_finite()
    }
}

impl std::fmt::Display for VehicleState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "p={:.3} m, v={:.3} m/s, a={:.3} m/s²",
            self.position, self.velocity, self.acceleration
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_at_rest() {
        assert_eq!(VehicleState::default(), VehicleState::at_rest());
    }

    #[test]
    fn display_is_nonempty() {
        let s = VehicleState::new(1.0, 2.0, 3.0);
        assert!(!s.to_string().is_empty());
    }

    #[test]
    fn finiteness_check() {
        assert!(VehicleState::new(0.0, 1.0, 2.0).is_finite());
        assert!(!VehicleState::new(f64::NAN, 1.0, 2.0).is_finite());
        assert!(!VehicleState::new(0.0, f64::INFINITY, 2.0).is_finite());
    }
}
