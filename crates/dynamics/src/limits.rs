use crate::VehicleState;

/// Error returned when constructing an inconsistent [`VehicleLimits`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LimitsError {
    /// `v_min > v_max`.
    VelocityRangeEmpty,
    /// `a_min > a_max`.
    AccelRangeEmpty,
    /// `a_min` must be strictly negative (braking must be possible).
    BrakingImpossible,
    /// `a_max` must be strictly positive (acceleration must be possible).
    ThrottleImpossible,
    /// A bound was NaN or infinite.
    NonFinite,
}

impl std::fmt::Display for LimitsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LimitsError::VelocityRangeEmpty => write!(f, "velocity range is empty (v_min > v_max)"),
            LimitsError::AccelRangeEmpty => {
                write!(f, "acceleration range is empty (a_min > a_max)")
            }
            LimitsError::BrakingImpossible => write!(f, "a_min must be strictly negative"),
            LimitsError::ThrottleImpossible => write!(f, "a_max must be strictly positive"),
            LimitsError::NonFinite => write!(f, "limit bounds must be finite"),
        }
    }
}

impl std::error::Error for LimitsError {}

/// Physical actuation and velocity limits of a vehicle.
///
/// These are the `v_min`, `v_max`, `a_min`, `a_max` bounds used throughout the
/// paper: in the braking-distance term of the slack (Eq. 5), in the
/// reachability analysis over stale messages (Eq. 2), and in the conservative
/// passing-time-window estimation (Eq. 7).
///
/// Invariants (checked by [`VehicleLimits::new`]):
/// `v_min ≤ v_max`, `a_min < 0 < a_max`, all finite.
///
/// # Example
///
/// ```
/// use cv_dynamics::VehicleLimits;
///
/// let limits = VehicleLimits::new(0.0, 12.0, -6.0, 3.0)?;
/// assert_eq!(limits.clamp_accel(100.0), 3.0);
/// assert_eq!(limits.clamp_accel(-100.0), -6.0);
/// # Ok::<(), cv_dynamics::LimitsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VehicleLimits {
    v_min: f64,
    v_max: f64,
    a_min: f64,
    a_max: f64,
}

impl VehicleLimits {
    /// Creates a new set of limits.
    ///
    /// # Errors
    ///
    /// Returns a [`LimitsError`] if the ranges are empty, `a_min` is not
    /// strictly negative, `a_max` is not strictly positive, or any bound is
    /// not finite.
    pub fn new(v_min: f64, v_max: f64, a_min: f64, a_max: f64) -> Result<Self, LimitsError> {
        if !(v_min.is_finite() && v_max.is_finite() && a_min.is_finite() && a_max.is_finite()) {
            return Err(LimitsError::NonFinite);
        }
        if v_min > v_max {
            return Err(LimitsError::VelocityRangeEmpty);
        }
        if a_min > a_max {
            return Err(LimitsError::AccelRangeEmpty);
        }
        if a_min >= 0.0 {
            return Err(LimitsError::BrakingImpossible);
        }
        if a_max <= 0.0 {
            return Err(LimitsError::ThrottleImpossible);
        }
        Ok(Self {
            v_min,
            v_max,
            a_min,
            a_max,
        })
    }

    /// Minimum velocity `v_min` (m/s).
    pub fn v_min(&self) -> f64 {
        self.v_min
    }

    /// Maximum velocity `v_max` (m/s).
    pub fn v_max(&self) -> f64 {
        self.v_max
    }

    /// Maximum braking (most negative acceleration) `a_min` (m/s²).
    pub fn a_min(&self) -> f64 {
        self.a_min
    }

    /// Maximum throttle `a_max` (m/s²).
    pub fn a_max(&self) -> f64 {
        self.a_max
    }

    /// Clamps an acceleration command into `[a_min, a_max]`.
    pub fn clamp_accel(&self, accel: f64) -> f64 {
        accel.clamp(self.a_min, self.a_max)
    }

    /// Clamps a velocity into `[v_min, v_max]`.
    pub fn clamp_velocity(&self, velocity: f64) -> f64 {
        velocity.clamp(self.v_min, self.v_max)
    }

    /// Returns `true` if `velocity` lies within `[v_min, v_max]`.
    pub fn velocity_in_range(&self, velocity: f64) -> bool {
        (self.v_min..=self.v_max).contains(&velocity)
    }

    /// Advances a vehicle state by one control step of length `dt` under the
    /// (clamped) acceleration command `accel`, saturating velocity exactly.
    ///
    /// If the commanded acceleration would push the velocity past `v_max`
    /// (or below `v_min`) inside the step, the position update integrates the
    /// accelerated segment up to the saturation instant and the constant-
    /// velocity segment after it. This makes the discrete model consistent
    /// with the piecewise closed-form reachability bound of paper Eq. 2.
    ///
    /// The returned state stores the clamped acceleration that was actually
    /// applied over the (initial part of the) step.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `dt <= 0`.
    pub fn step(&self, state: &VehicleState, accel: f64, dt: f64) -> VehicleState {
        debug_assert!(dt > 0.0, "time step must be positive, got {dt}");
        let a = self.clamp_accel(accel);
        let v0 = self.clamp_velocity(state.velocity);
        let v_unclamped = v0 + a * dt;

        let (position, velocity) = if v_unclamped > self.v_max {
            // Accelerating into the upper velocity bound.
            let t_sat = if a.abs() > f64::EPSILON {
                ((self.v_max - v0) / a).clamp(0.0, dt)
            } else {
                0.0
            };
            let p_sat = state.position + v0 * t_sat + 0.5 * a * t_sat * t_sat;
            (p_sat + self.v_max * (dt - t_sat), self.v_max)
        } else if v_unclamped < self.v_min {
            // Braking into the lower velocity bound.
            let t_sat = if a.abs() > f64::EPSILON {
                ((self.v_min - v0) / a).clamp(0.0, dt)
            } else {
                0.0
            };
            let p_sat = state.position + v0 * t_sat + 0.5 * a * t_sat * t_sat;
            (p_sat + self.v_min * (dt - t_sat), self.v_min)
        } else {
            (state.position + v0 * dt + 0.5 * a * dt * dt, v_unclamped)
        };

        VehicleState {
            position,
            velocity,
            acceleration: a,
        }
    }
}

impl std::fmt::Display for VehicleLimits {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "v ∈ [{}, {}] m/s, a ∈ [{}, {}] m/s²",
            self.v_min, self.v_max, self.a_min, self.a_max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> VehicleLimits {
        VehicleLimits::new(0.0, 10.0, -5.0, 2.0).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert_eq!(
            VehicleLimits::new(5.0, 1.0, -1.0, 1.0),
            Err(LimitsError::VelocityRangeEmpty)
        );
        assert_eq!(
            VehicleLimits::new(0.0, 1.0, 1.0, 0.5),
            Err(LimitsError::AccelRangeEmpty)
        );
        assert_eq!(
            VehicleLimits::new(0.0, 1.0, 0.0, 1.0),
            Err(LimitsError::BrakingImpossible)
        );
        assert_eq!(
            VehicleLimits::new(0.0, 1.0, -1.0, 0.0),
            Err(LimitsError::ThrottleImpossible)
        );
        assert_eq!(
            VehicleLimits::new(f64::NAN, 1.0, -1.0, 1.0),
            Err(LimitsError::NonFinite)
        );
    }

    #[test]
    fn plain_step_matches_double_integrator() {
        let s = VehicleState::new(0.0, 5.0, 0.0);
        let n = limits().step(&s, 2.0, 0.1);
        assert!((n.position - (0.5 + 0.5 * 2.0 * 0.01)).abs() < 1e-12);
        assert!((n.velocity - 5.2).abs() < 1e-12);
        assert_eq!(n.acceleration, 2.0);
    }

    #[test]
    fn accel_is_clamped() {
        let s = VehicleState::new(0.0, 5.0, 0.0);
        let n = limits().step(&s, 100.0, 0.1);
        assert_eq!(n.acceleration, 2.0);
    }

    #[test]
    fn velocity_saturates_exactly_at_v_max() {
        // v0 = 9.9, a = 2 over dt = 0.1 -> saturates at t_sat = 0.05.
        let s = VehicleState::new(0.0, 9.9, 0.0);
        let n = limits().step(&s, 2.0, 0.1);
        assert_eq!(n.velocity, 10.0);
        let expect = 9.9 * 0.05 + 0.5 * 2.0 * 0.05 * 0.05 + 10.0 * 0.05;
        assert!((n.position - expect).abs() < 1e-12, "{}", n.position);
    }

    #[test]
    fn velocity_saturates_exactly_at_v_min() {
        // v0 = 0.2, a = -5 -> stops at t_sat = 0.04 and stays stopped.
        let s = VehicleState::new(0.0, 0.2, 0.0);
        let n = limits().step(&s, -5.0, 0.1);
        assert_eq!(n.velocity, 0.0);
        let expect = 0.2 * 0.04 + 0.5 * (-5.0) * 0.04 * 0.04;
        assert!((n.position - expect).abs() < 1e-12);
    }

    #[test]
    fn stopped_vehicle_stays_stopped_under_braking() {
        let s = VehicleState::new(3.0, 0.0, 0.0);
        let n = limits().step(&s, -5.0, 0.1);
        assert_eq!(n.velocity, 0.0);
        assert_eq!(n.position, 3.0);
    }

    #[test]
    fn saturated_step_position_never_exceeds_vmax_travel() {
        let s = VehicleState::new(0.0, 9.5, 0.0);
        let n = limits().step(&s, 2.0, 1.0);
        assert!(n.position <= 10.0 * 1.0 + 1e-12);
    }

    mod props {
        use super::*;

        cv_rng::props! {            fn velocity_always_within_limits(
                v0 in 0.0..10.0f64,
                a in -5.0..2.0f64,
                dt in 0.001..0.5f64,
            ) {
                let s = VehicleState::new(0.0, v0, 0.0);
                let n = limits().step(&s, a, dt);
                assert!(n.velocity >= 0.0 - 1e-12);
                assert!(n.velocity <= 10.0 + 1e-12);
            }
            fn position_advance_bounded_by_velocity_envelope(
                v0 in 0.0..10.0f64,
                a in -5.0..2.0f64,
                dt in 0.001..0.5f64,
            ) {
                let s = VehicleState::new(0.0, v0, 0.0);
                let n = limits().step(&s, a, dt);
                // The vehicle can never travel further than at v_max the
                // whole step, nor "go backward" below v_min = 0 travel.
                assert!(n.position <= 10.0 * dt + 1e-9);
                assert!(n.position >= -1e-9);
            }
            fn max_throttle_dominates(
                v0 in 0.0..10.0f64,
                a in -5.0..2.0f64,
                dt in 0.001..0.5f64,
            ) {
                let s = VehicleState::new(0.0, v0, 0.0);
                let n = limits().step(&s, a, dt);
                let n_max = limits().step(&s, 2.0, dt);
                assert!(n_max.position + 1e-9 >= n.position);
                assert!(n_max.velocity + 1e-9 >= n.velocity);
            }
            fn step_is_continuous_in_dt(
                v0 in 0.0..10.0f64,
                a in -5.0..2.0f64,
                dt in 0.002..0.5f64,
            ) {
                // Splitting a step in two must give the same end state
                // (semigroup property of the exact integrator).
                let s = VehicleState::new(0.0, v0, 0.0);
                let whole = limits().step(&s, a, dt);
                let half = limits().step(&s, a, dt / 2.0);
                let two = limits().step(&half, a, dt / 2.0);
                assert!((whole.position - two.position).abs() < 1e-9);
                assert!((whole.velocity - two.velocity).abs() < 1e-9);
            }
        }
    }
}
