/// Buffers for the aggressive unsafe-set estimation (paper Section IV).
///
/// Instead of the physical limits `a_1,max`/`v_1,max` (Eq. 7), the aggressive
/// estimate (Eq. 8) uses
///
/// ```text
/// a_est = min(a_1(t) + a_buf, a_1,max)
/// v_est = min(v_1(t) + v_buf, v_1,max)
/// ```
///
/// (and symmetrically `−a_buf`/`−v_buf` against the lower limits for the late
/// edge of the window). Larger buffers are more conservative; zero buffers
/// trust the current measurement completely.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggressiveConfig {
    /// Acceleration buffer `a_buf ≥ 0` (m/s²).
    pub a_buf: f64,
    /// Velocity buffer `v_buf ≥ 0` (m/s).
    pub v_buf: f64,
}

impl AggressiveConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if either buffer is negative or non-finite.
    pub fn new(a_buf: f64, v_buf: f64) -> Self {
        assert!(
            a_buf >= 0.0 && v_buf >= 0.0 && a_buf.is_finite() && v_buf.is_finite(),
            "buffers must be nonnegative and finite, got a_buf={a_buf}, v_buf={v_buf}"
        );
        Self { a_buf, v_buf }
    }
}

impl Default for AggressiveConfig {
    /// The defaults used by the experiments (`a_buf = 1 m/s²`,
    /// `v_buf = 2 m/s`; the paper leaves the values "user-defined").
    fn default() -> Self {
        Self::new(1.0, 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_buffers_are_positive() {
        let c = AggressiveConfig::default();
        assert!(c.a_buf > 0.0);
        assert!(c.v_buf > 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_buffer_panics() {
        let _ = AggressiveConfig::new(-0.1, 0.0);
    }
}
