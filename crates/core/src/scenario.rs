use cv_dynamics::VehicleState;
use cv_estimation::{Interval, VehicleEstimate};

use crate::AggressiveConfig;

/// A driving scenario: the geometry and set definitions the framework needs.
///
/// The framework itself (monitor, compound planner, evaluation) is scenario-
/// agnostic; everything specific to, say, the unprotected left turn of paper
/// Section IV — slack, passing-time windows, the closed-form emergency
/// planner — is provided through this trait.
///
/// # Contract
///
/// Implementations must uphold the two properties the safety proof of paper
/// §III-E rests on:
///
/// * **Boundary coverage** (Eq. 3): if a state is *not* in the unsafe set and
///   *not* in the boundary safe set, then no admissible one-step control can
///   put it into the unsafe set.
/// * **Emergency invariance** (Eq. 4): from any state in the boundary safe
///   set, one step under [`Scenario::emergency_accel`] stays in the safe
///   set (and by induction remains recoverable).
///
/// `tests/safety_guarantee.rs` in the workspace root checks both properties
/// empirically for the left-turn implementation.
pub trait Scenario {
    /// Returns `true` if the ego vehicle has reached the target set `X_t`.
    fn target_reached(&self, time: f64, ego: &VehicleState) -> bool;

    /// Ground-truth collision test on *true* states (used by the evaluator,
    /// never by the planner, which only sees estimates).
    fn collision(&self, ego: &VehicleState, other: &VehicleState) -> bool;

    /// Conservative *conflict descriptor* of the conflicting vehicle,
    /// computed soundly from an interval estimate with the vehicle's
    /// *physical* limits. `None` when no conflict remains.
    ///
    /// What the interval means is scenario-defined: the left-turn case study
    /// uses the passing-time window `[τ_1,min, τ_1,max]` (paper Eq. 7); the
    /// car-following scenario uses the lead vehicle's position bound. The
    /// framework only moves it between the monitor, `κ_e` and the planner
    /// observation.
    fn conservative_window(&self, time: f64, estimate: &VehicleEstimate) -> Option<Interval>;

    /// Optimistic window assuming the conflicting vehicle keeps its current
    /// nominal velocity. This is what an over-aggressive planner effectively
    /// believes; it is *not* sound.
    fn nominal_window(&self, time: f64, estimate: &VehicleEstimate) -> Option<Interval>;

    /// Aggressive window (paper Eq. 8): limits replaced by
    /// `min(a_1(t)+a_buf, a_max)` / `min(v_1(t)+v_buf, v_max)` and the
    /// symmetric lower bounds. Sound only "most of the time" — which is fine
    /// because only the NN planner consumes it.
    fn aggressive_window(
        &self,
        time: f64,
        estimate: &VehicleEstimate,
        config: &AggressiveConfig,
    ) -> Option<Interval>;

    /// Unsafe-set membership `x(t) ∈ X_u` (paper Eq. 6) given the ego state
    /// and the conflicting vehicle's estimated passing window.
    fn in_unsafe_set(&self, time: f64, ego: &VehicleState, window: Option<Interval>) -> bool;

    /// Boundary-safe-set membership `x(t) ∈ X_b` (paper Eq. 3 and the
    /// closed form in Section IV).
    fn in_boundary_safe_set(&self, time: f64, ego: &VehicleState, window: Option<Interval>)
        -> bool;

    /// The emergency planner `κ_e` (paper Eq. 4 and the closed form in
    /// Section IV). Must satisfy the emergency-invariance contract above.
    ///
    /// `window` is the same conservative window the monitor used for its
    /// verdict: in the paper's formulation `τ_1,min`/`τ_1,max` are part of
    /// the system state `x(t)` (Eq. 6), so a state-feedback `κ_e(x)` may
    /// depend on them. The left-turn implementation uses it to decide
    /// between *rushing* a committed crossing (provably clears before the
    /// earliest possible arrival) and *delaying* it.
    fn emergency_accel(&self, time: f64, ego: &VehicleState, window: Option<Interval>) -> f64;

    /// Full emergency-selection rule used by the runtime monitor.
    ///
    /// The default is the paper's rule — boundary-safe-set membership —
    /// plus a defensive unsafe-set check. Scenarios may strengthen it; the
    /// left-turn implementation adds *commit protection*: once stopping
    /// before the conflict zone is infeasible while the conflict window is
    /// still open, the emergency planner keeps control so the crossing is
    /// completed at full throttle instead of being left to an unverified
    /// planner that might hesitate mid-zone. (This closes a corner Eq. 3
    /// leaves open: a planner may enter the committed region from a
    /// no-overlap state and only then steer into overlap.)
    fn requires_emergency(&self, time: f64, ego: &VehicleState, window: Option<Interval>) -> bool {
        self.in_boundary_safe_set(time, ego, window) || self.in_unsafe_set(time, ego, window)
    }
}

impl<S: Scenario + ?Sized> Scenario for &S {
    fn target_reached(&self, time: f64, ego: &VehicleState) -> bool {
        (**self).target_reached(time, ego)
    }

    fn collision(&self, ego: &VehicleState, other: &VehicleState) -> bool {
        (**self).collision(ego, other)
    }

    fn conservative_window(&self, time: f64, estimate: &VehicleEstimate) -> Option<Interval> {
        (**self).conservative_window(time, estimate)
    }

    fn nominal_window(&self, time: f64, estimate: &VehicleEstimate) -> Option<Interval> {
        (**self).nominal_window(time, estimate)
    }

    fn aggressive_window(
        &self,
        time: f64,
        estimate: &VehicleEstimate,
        config: &AggressiveConfig,
    ) -> Option<Interval> {
        (**self).aggressive_window(time, estimate, config)
    }

    fn in_unsafe_set(&self, time: f64, ego: &VehicleState, window: Option<Interval>) -> bool {
        (**self).in_unsafe_set(time, ego, window)
    }

    fn in_boundary_safe_set(
        &self,
        time: f64,
        ego: &VehicleState,
        window: Option<Interval>,
    ) -> bool {
        (**self).in_boundary_safe_set(time, ego, window)
    }

    fn emergency_accel(&self, time: f64, ego: &VehicleState, window: Option<Interval>) -> f64 {
        (**self).emergency_accel(time, ego, window)
    }

    fn requires_emergency(&self, time: f64, ego: &VehicleState, window: Option<Interval>) -> bool {
        (**self).requires_emergency(time, ego, window)
    }
}
