use cv_dynamics::VehicleState;
use cv_estimation::{Interval, VehicleEstimate};

use crate::Scenario;

/// What the runtime monitor decided for the current control step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MonitorVerdict {
    /// The state is in the boundary safe set (or, defensively, already in
    /// the unsafe set): the emergency planner must take over.
    Emergency {
        /// The conservative window that triggered the verdict, if any.
        window: Option<Interval>,
    },
    /// The NN planner may run this step: no admissible control can reach the
    /// unsafe set within one step.
    Nominal {
        /// The conservative window, available for aggressive re-estimation.
        window: Option<Interval>,
    },
}

impl MonitorVerdict {
    /// `true` if the emergency planner was selected.
    pub fn is_emergency(&self) -> bool {
        matches!(self, MonitorVerdict::Emergency { .. })
    }
}

/// The runtime monitor of paper Section III-C.
///
/// Every control step it estimates the unsafe set from the (filtered)
/// information about the other vehicle, computes the boundary safe set, and
/// *"selects the emergency planner **if and only if** the current state is in
/// the boundary safe set"*. As a defensive measure this implementation also
/// escalates when the state is already inside the estimated unsafe set
/// (unreachable under the guarantee, but cheap insurance against estimator
/// misuse).
///
/// The monitor is stateless; it borrows the scenario geometry per call so a
/// single monitor can serve many episodes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuntimeMonitor;

impl RuntimeMonitor {
    /// Creates a monitor.
    pub fn new() -> Self {
        Self
    }

    /// Evaluates the selection rule for one control step.
    ///
    /// `estimate` must come from a *sound* estimator (hard intervals) for
    /// the safety guarantee to hold; passing naive point estimates degrades
    /// the monitor to best-effort.
    pub fn check<S: Scenario>(
        &self,
        scenario: &S,
        time: f64,
        ego: &VehicleState,
        estimate: &VehicleEstimate,
    ) -> MonitorVerdict {
        let window = scenario.conservative_window(time, estimate);
        if scenario.requires_emergency(time, ego, window) {
            MonitorVerdict::Emergency { window }
        } else {
            MonitorVerdict::Nominal { window }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AggressiveConfig;

    /// A 1-D toy scenario: unsafe iff position ≥ 10 while a window is open;
    /// boundary iff within one max-speed step of it.
    struct Wall;

    impl Scenario for Wall {
        fn target_reached(&self, _t: f64, ego: &VehicleState) -> bool {
            ego.position >= 20.0
        }

        fn collision(&self, ego: &VehicleState, _other: &VehicleState) -> bool {
            ego.position >= 10.0
        }

        fn conservative_window(&self, _t: f64, _e: &VehicleEstimate) -> Option<Interval> {
            Some(Interval::new(0.0, 100.0))
        }

        fn nominal_window(&self, t: f64, e: &VehicleEstimate) -> Option<Interval> {
            self.conservative_window(t, e)
        }

        fn aggressive_window(
            &self,
            t: f64,
            e: &VehicleEstimate,
            _c: &AggressiveConfig,
        ) -> Option<Interval> {
            self.conservative_window(t, e)
        }

        fn in_unsafe_set(&self, _t: f64, ego: &VehicleState, w: Option<Interval>) -> bool {
            w.is_some() && ego.position >= 10.0
        }

        fn in_boundary_safe_set(&self, _t: f64, ego: &VehicleState, w: Option<Interval>) -> bool {
            w.is_some() && ego.position >= 9.0 && ego.position < 10.0
        }

        fn emergency_accel(&self, _t: f64, _ego: &VehicleState, _w: Option<Interval>) -> f64 {
            -5.0
        }
    }

    fn estimate() -> VehicleEstimate {
        VehicleEstimate::exact(0.0, VehicleState::at_rest())
    }

    #[test]
    fn nominal_when_far_from_unsafe_set() {
        let v =
            RuntimeMonitor::new().check(&Wall, 0.0, &VehicleState::new(0.0, 1.0, 0.0), &estimate());
        assert!(!v.is_emergency());
    }

    #[test]
    fn emergency_inside_boundary_safe_set() {
        let v =
            RuntimeMonitor::new().check(&Wall, 0.0, &VehicleState::new(9.5, 1.0, 0.0), &estimate());
        assert!(v.is_emergency());
    }

    #[test]
    fn emergency_inside_unsafe_set_defensively() {
        let v = RuntimeMonitor::new().check(
            &Wall,
            0.0,
            &VehicleState::new(10.5, 1.0, 0.0),
            &estimate(),
        );
        assert!(v.is_emergency());
    }
}
