use crate::Observation;

/// A longitudinal planner: maps an observation to an acceleration command
/// `a_0(t)` for the ego vehicle (paper Section II-A, "Planner").
///
/// Implementations include the NN-based planners and the analytic teacher
/// policies in `cv-planner`, as well as the [`crate::CompoundPlanner`]'s
/// internals. Implementors should be deterministic given the observation;
/// stochastic exploration belongs in training, not deployment.
pub trait Planner {
    /// Returns the acceleration command for the current step. The caller
    /// clamps it to the ego's actuation limits.
    fn plan(&mut self, obs: &Observation) -> f64;

    /// A short human-readable name, used in experiment tables.
    fn name(&self) -> &str {
        "planner"
    }

    /// Resets any per-episode internal state. The default is a no-op.
    fn reset(&mut self) {}
}

impl<P: Planner + ?Sized> Planner for Box<P> {
    fn plan(&mut self, obs: &Observation) -> f64 {
        (**self).plan(obs)
    }

    fn name(&self) -> &str {
        (**self).name()
    }

    fn reset(&mut self) {
        (**self).reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_dynamics::VehicleState;

    struct Constant(f64);

    impl Planner for Constant {
        fn plan(&mut self, _obs: &Observation) -> f64 {
            self.0
        }

        fn name(&self) -> &str {
            "constant"
        }
    }

    #[test]
    fn boxed_planner_delegates() {
        let mut p: Box<dyn Planner> = Box::new(Constant(1.5));
        let obs = Observation::new(0.0, VehicleState::at_rest(), None);
        assert_eq!(p.plan(&obs), 1.5);
        assert_eq!(p.name(), "constant");
        p.reset();
    }
}
