use cv_dynamics::VehicleState;
use cv_estimation::{Interval, VehicleEstimate};

use crate::{
    CompoundStats, Observation, PlanDecision, Planner, PlannerSource, Scenario, WindowSource,
};

/// Merges per-vehicle passing windows into the single window the (one-window)
/// NN planner consumes: the hull of the *earliest cluster* of windows whose
/// gaps are smaller than `merge_gap` seconds.
///
/// Gaps shorter than the ego's crossing time are not usable, so clustering
/// with a `merge_gap` of roughly the crossing time presents dense traffic as
/// one blocked interval while still exposing genuinely usable gaps behind it.
/// Soundness is unaffected — the runtime monitor always checks every window
/// individually.
///
/// # Example
///
/// ```
/// use cv_estimation::Interval;
/// use safe_shield::merge_windows;
///
/// let windows = [
///     Some(Interval::new(4.0, 5.0)),
///     Some(Interval::new(5.5, 6.5)), // 0.5 s gap: unusable, merged
///     Some(Interval::new(12.0, 13.0)), // 5.5 s gap: usable, kept separate
///     None,
/// ];
/// let merged = merge_windows(windows.iter().copied(), 2.0).expect("has windows");
/// assert_eq!(merged, Interval::new(4.0, 6.5));
/// ```
pub fn merge_windows(
    windows: impl IntoIterator<Item = Option<Interval>>,
    merge_gap: f64,
) -> Option<Interval> {
    let mut active: Vec<Interval> = windows.into_iter().flatten().collect();
    merge_windows_in_place(&mut active, merge_gap)
}

/// Allocation-free core of [`merge_windows`]: merges the windows already
/// collected in `active` (any order), sorting the buffer in place.
///
/// Hot loops keep `active` alive across calls (`clear()` + `extend(…)`) so
/// the per-step merge performs no heap allocation in the steady state. The
/// result is identical to [`merge_windows`] over the same windows.
pub fn merge_windows_in_place(active: &mut [Interval], merge_gap: f64) -> Option<Interval> {
    if active.is_empty() {
        return None;
    }
    active.sort_by(|a, b| a.lo().partial_cmp(&b.lo()).expect("finite bounds"));
    let mut merged = active[0];
    for w in &active[1..] {
        if w.lo() <= merged.hi() + merge_gap {
            merged = merged.hull(w);
        } else {
            break; // the earliest cluster is complete
        }
    }
    Some(merged)
}

/// Temporal slack of one ego/vehicle pair: how far the ego's projected
/// zone-crossing interval stays clear of that vehicle's passing window, in
/// seconds.
///
/// Positive when the two intervals are disjoint (the separation between
/// them), negative when they overlap (minus the overlap duration — the
/// amount of crossing time in conflict), and `+∞` when either interval is
/// absent (no projected crossing, or the vehicle never occupies the zone):
/// a pair that cannot meet has unbounded slack.
pub fn pair_time_slack(ego_crossing: Option<Interval>, window: Option<Interval>) -> f64 {
    match (ego_crossing, window) {
        (Some(ego), Some(win)) => {
            if ego.hi() < win.lo() {
                win.lo() - ego.hi()
            } else if win.hi() < ego.lo() {
                ego.lo() - win.hi()
            } else {
                -(ego.hi().min(win.hi()) - ego.lo().max(win.lo()))
            }
        }
        _ => f64::INFINITY,
    }
}

/// Platoon-level temporal slack: the minimum [`pair_time_slack`] over every
/// ego/vehicle pair, i.e. the slack of the *tightest* pair. `+∞` over an
/// empty platoon.
///
/// Because this is a plain `min` fold over independently computed per-pair
/// slacks, removing any vehicle can only keep the result or raise it —
/// never lower it — which is the monotonicity property the platoon tests
/// pin down.
pub fn platoon_slack(pair_slacks: impl IntoIterator<Item = f64>) -> f64 {
    pair_slacks.into_iter().fold(f64::INFINITY, f64::min)
}

/// Platoon-level safety score: the minimum per-pair `η` — a collision with
/// *any* vehicle scores the episode as a collision, exactly as the paper's
/// single-pair `η` does for its one conflicting vehicle.
pub fn platoon_eta(pair_etas: impl IntoIterator<Item = f64>) -> f64 {
    pair_etas.into_iter().fold(f64::INFINITY, f64::min)
}

/// Multi-vehicle compound planner: the paper's framework generalised to `n−1`
/// conflicting vehicles (its system model, Section II-A, already allows
/// them; the evaluation only exercises one).
///
/// One [`Scenario`] instance per conflicting vehicle (sharing the ego
/// geometry but each knowing where the conflict zone lies in *its* vehicle's
/// frame). The runtime monitor escalates if **any** vehicle's window demands
/// it; the embedded NN planner receives the [`merge_windows`] fusion of the
/// per-vehicle windows of its configured [`WindowSource`].
#[derive(Debug, Clone)]
pub struct MultiCompoundPlanner<S, P> {
    scenarios: Vec<S>,
    nn: P,
    window_source: WindowSource,
    merge_gap: f64,
    stats: CompoundStats,
    /// Per-step scratch (monitor windows / NN window cluster), retained
    /// across calls so [`MultiCompoundPlanner::plan`] is allocation-free in
    /// the steady state.
    win_scratch: Vec<Option<Interval>>,
    merge_scratch: Vec<Interval>,
}

/// Default window clustering gap (s): roughly the ego's zone-crossing time.
pub const DEFAULT_MERGE_GAP: f64 = 2.0;

/// Result of the decision phase of a compound-planner step
/// ([`MultiCompoundPlanner::plan_prepare`]), split out so lane-batched
/// executors can run monitor/emergency logic per episode while deferring
/// the NN evaluation to a batched kernel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PreparedPlan {
    /// The monitor decided (emergency); no NN evaluation is needed.
    Decided(PlanDecision),
    /// Nominal step: the embedded NN planner must be evaluated on `obs`,
    /// and its output used with [`crate::PlannerSource::NeuralNetwork`].
    Nominal {
        /// The fused observation the NN consumes.
        obs: Observation,
    },
}

impl<S: Scenario, P: Planner> MultiCompoundPlanner<S, P> {
    /// Wraps `nn` with one scenario per conflicting vehicle.
    ///
    /// # Panics
    ///
    /// Panics if `scenarios` is empty.
    pub fn new(scenarios: Vec<S>, nn: P, window_source: WindowSource) -> Self {
        assert!(
            !scenarios.is_empty(),
            "need at least one conflicting vehicle"
        );
        Self {
            scenarios,
            nn,
            window_source,
            merge_gap: DEFAULT_MERGE_GAP,
            stats: CompoundStats::default(),
            win_scratch: Vec::new(),
            merge_scratch: Vec::new(),
        }
    }

    /// Overrides the window clustering gap.
    ///
    /// # Panics
    ///
    /// Panics if `merge_gap` is negative.
    pub fn with_merge_gap(mut self, merge_gap: f64) -> Self {
        assert!(merge_gap >= 0.0, "merge gap must be nonnegative");
        self.merge_gap = merge_gap;
        self
    }

    /// The per-vehicle scenarios.
    pub fn scenarios(&self) -> &[S] {
        &self.scenarios
    }

    /// Episode statistics so far.
    pub fn stats(&self) -> CompoundStats {
        self.stats
    }

    /// Clears statistics and resets the embedded planner.
    pub fn reset(&mut self) {
        self.stats = CompoundStats::default();
        self.nn.reset();
    }

    /// Re-arms the planner for a fresh episode with new per-vehicle
    /// scenarios, reusing the internal buffers (and, crucially, the embedded
    /// planner — an NN planner's weight matrices are *not* re-cloned).
    ///
    /// Equivalent to building a new planner with [`MultiCompoundPlanner::new`]
    /// over the same scenarios: statistics are cleared and the embedded
    /// planner is [`Planner::reset`].
    ///
    /// # Panics
    ///
    /// Panics if `scenarios` is empty.
    pub fn reinit(&mut self, scenarios: &[S])
    where
        S: Clone,
    {
        assert!(
            !scenarios.is_empty(),
            "need at least one conflicting vehicle"
        );
        self.scenarios.clear();
        self.scenarios.extend_from_slice(scenarios);
        self.reset();
    }

    /// Decision phase of one control step: runs the monitor/emergency logic
    /// and window fusion, but **defers** the NN evaluation.
    ///
    /// Statistics (total/emergency step counters) are updated here, so a
    /// caller that completes every [`PreparedPlan::Nominal`] with its own
    /// NN evaluation observes exactly the bookkeeping of
    /// [`MultiCompoundPlanner::plan`] — which is itself implemented as
    /// `plan_prepare` + an inline evaluation of the embedded planner.
    /// Lane-batched executors use this to gather the observations of many
    /// episodes and evaluate them in one batched forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `estimates.len()` differs from the scenario count.
    pub fn plan_prepare(
        &mut self,
        time: f64,
        ego: &VehicleState,
        estimates: &[VehicleEstimate],
    ) -> PreparedPlan {
        assert_eq!(
            estimates.len(),
            self.scenarios.len(),
            "one estimate per conflicting vehicle"
        );
        self.stats.total_steps += 1;

        self.win_scratch.clear();
        self.win_scratch.extend(
            self.scenarios
                .iter()
                .zip(estimates)
                .map(|(s, e)| s.conservative_window(time, e)),
        );

        // The monitor escalates on the first vehicle demanding it.
        for (i, scenario) in self.scenarios.iter().enumerate() {
            if scenario.requires_emergency(time, ego, self.win_scratch[i]) {
                self.stats.emergency_steps += 1;
                return PreparedPlan::Decided(PlanDecision {
                    accel: scenario.emergency_accel(time, ego, self.win_scratch[i]),
                    source: PlannerSource::Emergency,
                });
            }
        }

        // NN step: fuse the per-vehicle windows of the configured source.
        self.merge_scratch.clear();
        self.merge_scratch
            .extend(self.scenarios.iter().zip(estimates).filter_map(|(s, e)| {
                match self.window_source {
                    WindowSource::Conservative => s.conservative_window(time, e),
                    WindowSource::Aggressive(cfg) => s.aggressive_window(time, e, &cfg),
                }
            }));
        let fused = merge_windows_in_place(&mut self.merge_scratch, self.merge_gap);
        PreparedPlan::Nominal {
            obs: Observation::new(time, *ego, fused),
        }
    }

    /// Plans one control step from one estimate per conflicting vehicle.
    ///
    /// # Panics
    ///
    /// Panics if `estimates.len()` differs from the scenario count.
    pub fn plan(
        &mut self,
        time: f64,
        ego: &VehicleState,
        estimates: &[VehicleEstimate],
    ) -> PlanDecision {
        match self.plan_prepare(time, ego, estimates) {
            PreparedPlan::Decided(decision) => decision,
            PreparedPlan::Nominal { obs } => PlanDecision {
                accel: self.nn.plan(&obs),
                source: PlannerSource::NeuralNetwork,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AggressiveConfig;

    #[test]
    fn merge_keeps_disjoint_clusters_apart() {
        let merged = merge_windows(
            [
                Some(Interval::new(10.0, 11.0)),
                Some(Interval::new(2.0, 3.0)),
            ],
            2.0,
        )
        .unwrap();
        assert_eq!(merged, Interval::new(2.0, 3.0));
    }

    #[test]
    fn merge_fuses_chained_windows() {
        let merged = merge_windows(
            [
                Some(Interval::new(2.0, 3.0)),
                Some(Interval::new(4.0, 5.0)),
                Some(Interval::new(6.5, 7.0)),
            ],
            2.0,
        )
        .unwrap();
        // 2-3, 4-5 and 6.5-7 chain up (gaps 1.0 and 1.5 < 2.0).
        assert_eq!(merged, Interval::new(2.0, 7.0));
    }

    #[test]
    fn in_place_merge_matches_allocating_merge() {
        let cases: [&[Option<Interval>]; 4] = [
            &[],
            &[None, None],
            &[Some(Interval::new(4.0, 5.0)), Some(Interval::new(5.5, 6.5))],
            &[
                Some(Interval::new(10.0, 11.0)),
                None,
                Some(Interval::new(2.0, 3.0)),
                Some(Interval::new(4.5, 5.0)),
            ],
        ];
        let mut buf = Vec::new();
        for windows in cases {
            buf.clear();
            buf.extend(windows.iter().copied().flatten());
            assert_eq!(
                merge_windows_in_place(&mut buf, 2.0),
                merge_windows(windows.iter().copied(), 2.0),
            );
        }
    }

    #[test]
    fn merge_handles_empty_and_none() {
        assert_eq!(merge_windows([], 2.0), None);
        assert_eq!(merge_windows([None, None], 2.0), None);
        assert_eq!(
            merge_windows([None, Some(Interval::new(1.0, 2.0))], 2.0),
            Some(Interval::new(1.0, 2.0))
        );
    }

    #[test]
    fn pair_slack_measures_separation_and_overlap() {
        let ego = Some(Interval::new(4.0, 6.0));
        // Ego crosses before the window opens: separation 2 s.
        assert_eq!(pair_time_slack(ego, Some(Interval::new(8.0, 10.0))), 2.0);
        // Window closes before the ego arrives: separation 1 s.
        assert_eq!(pair_time_slack(ego, Some(Interval::new(1.0, 3.0))), 1.0);
        // Overlap of 1 s → slack −1.
        assert_eq!(pair_time_slack(ego, Some(Interval::new(5.0, 9.0))), -1.0);
        // Window swallowed by the crossing: overlap is the window length.
        assert_eq!(pair_time_slack(ego, Some(Interval::new(4.5, 5.5))), -1.0);
        // A pair that cannot meet has unbounded slack.
        assert_eq!(
            pair_time_slack(None, Some(Interval::new(1.0, 2.0))),
            f64::INFINITY
        );
        assert_eq!(pair_time_slack(ego, None), f64::INFINITY);
    }

    #[test]
    fn platoon_slack_is_the_tightest_pair_and_is_drop_monotone() {
        let slacks = [3.0, -0.5, f64::INFINITY, 1.25];
        assert_eq!(platoon_slack(slacks), -0.5);
        assert_eq!(platoon_slack([]), f64::INFINITY);
        // Dropping any one pair never lowers the remaining minimum.
        let full = platoon_slack(slacks);
        for drop in 0..slacks.len() {
            let subset = slacks
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop)
                .map(|(_, s)| *s);
            assert!(platoon_slack(subset) >= full, "dropping pair {drop}");
        }
    }

    #[test]
    fn platoon_eta_is_the_worst_pair() {
        assert_eq!(platoon_eta([0.0, -1.0, 0.125]), -1.0);
        assert_eq!(platoon_eta([0.125, 0.125]), 0.125);
    }

    /// Toy scenario parameterised by a wall position per "vehicle".
    struct Wall(f64);

    impl Scenario for Wall {
        fn target_reached(&self, _t: f64, ego: &VehicleState) -> bool {
            ego.position >= 20.0
        }

        fn collision(&self, ego: &VehicleState, _other: &VehicleState) -> bool {
            ego.position >= self.0
        }

        fn conservative_window(&self, _t: f64, _e: &VehicleEstimate) -> Option<Interval> {
            Some(Interval::new(0.0, 100.0))
        }

        fn nominal_window(&self, t: f64, e: &VehicleEstimate) -> Option<Interval> {
            self.conservative_window(t, e)
        }

        fn aggressive_window(
            &self,
            t: f64,
            e: &VehicleEstimate,
            _c: &AggressiveConfig,
        ) -> Option<Interval> {
            self.conservative_window(t, e)
        }

        fn in_unsafe_set(&self, _t: f64, ego: &VehicleState, w: Option<Interval>) -> bool {
            w.is_some() && ego.position >= self.0
        }

        fn in_boundary_safe_set(&self, _t: f64, ego: &VehicleState, w: Option<Interval>) -> bool {
            w.is_some() && ego.position >= self.0 - 1.0 && ego.position < self.0
        }

        fn emergency_accel(&self, _t: f64, _ego: &VehicleState, _w: Option<Interval>) -> f64 {
            -5.0
        }
    }

    struct Cruise;

    impl Planner for Cruise {
        fn plan(&mut self, _obs: &Observation) -> f64 {
            1.0
        }
    }

    #[test]
    fn any_vehicle_can_trigger_emergency() {
        let mut multi = MultiCompoundPlanner::new(
            vec![Wall(50.0), Wall(10.0)],
            Cruise,
            WindowSource::Conservative,
        );
        let est = VehicleEstimate::exact(0.0, VehicleState::at_rest());
        // Far from both walls: NN drives.
        let d = multi.plan(0.0, &VehicleState::new(0.0, 1.0, 0.0), &[est, est]);
        assert_eq!(d.source, PlannerSource::NeuralNetwork);
        // In the second wall's boundary band: emergency, even though the
        // first wall is far away.
        let d = multi.plan(0.1, &VehicleState::new(9.5, 1.0, 0.0), &[est, est]);
        assert_eq!(d.source, PlannerSource::Emergency);
        assert_eq!(d.accel, -5.0);
        assert_eq!(multi.stats().emergency_steps, 1);
    }

    /// `plan` must be exactly `plan_prepare` + inline NN completion —
    /// same decisions, same statistics — so batched executors that
    /// complete `Nominal` themselves reproduce the compound semantics.
    #[test]
    fn plan_prepare_plus_completion_matches_plan() {
        let mk = || {
            MultiCompoundPlanner::new(
                vec![Wall(50.0), Wall(10.0)],
                Cruise,
                WindowSource::Conservative,
            )
        };
        let mut whole = mk();
        let mut split = mk();
        let est = VehicleEstimate::exact(0.0, VehicleState::at_rest());
        for step in 0..12 {
            let ego = VehicleState::new(step as f64, 1.0, 0.0);
            let t = step as f64 * 0.1;
            let want = whole.plan(t, &ego, &[est, est]);
            let got = match split.plan_prepare(t, &ego, &[est, est]) {
                PreparedPlan::Decided(d) => d,
                PreparedPlan::Nominal { obs } => PlanDecision {
                    accel: Cruise.plan(&obs),
                    source: PlannerSource::NeuralNetwork,
                },
            };
            assert_eq!(want, got, "step {step}");
        }
        assert_eq!(whole.stats(), split.stats());
        assert!(whole.stats().emergency_steps > 0, "matrix must cover both");
    }

    #[test]
    #[should_panic]
    fn estimate_count_must_match() {
        let mut multi =
            MultiCompoundPlanner::new(vec![Wall(10.0)], Cruise, WindowSource::Conservative);
        let est = VehicleEstimate::exact(0.0, VehicleState::at_rest());
        let _ = multi.plan(0.0, &VehicleState::at_rest(), &[est, est]);
    }
}
