//! Safety-guaranteed compound planner framework (the paper's contribution).
//!
//! Given **any** neural-network-based planner `κ_n` with no safety guarantee,
//! this crate builds a *compound planner* `κ_c` (paper Section III) that:
//!
//! 1. runs a [`RuntimeMonitor`] every control step; it estimates the unsafe
//!    set `X_u` from filtered information and computes the *boundary safe
//!    set* `X_b` — the states one control step away from `X_u` (Eq. 3);
//! 2. hands control to an *emergency planner* `κ_e` **iff** the current state
//!    is in `X_b` (the `κ_e` contract is Eq. 4: from `X_b`, stay in the safe
//!    set), and to `κ_n` otherwise;
//! 3. optionally feeds `κ_n` an *aggressive* (underestimated) unsafe set
//!    (paper Eq. 8, [`AggressiveConfig`]) — safe because the monitor keeps
//!    using the sound conservative set.
//!
//! Scenario-specific geometry (slack, passing-time windows, `κ_e` closed
//! form) lives behind the [`Scenario`] trait; the `left-turn` crate provides
//! the paper's unprotected-left-turn case study.
//!
//! The evaluation function `η` (Section II-A) is [`Outcome::eta`]:
//! `−1` on a safety violation, `1/t_r` on reaching the target at `t_r`, `0`
//! otherwise.
//!
//! # Example
//!
//! A minimal planner wrapped by the framework (using a trivial scenario from
//! the test suite — see the `left-turn` crate for the real one):
//!
//! ```
//! use safe_shield::{Observation, Planner};
//!
//! struct CruisePlanner;
//! impl Planner for CruisePlanner {
//!     fn plan(&mut self, _obs: &Observation) -> f64 { 0.0 }
//!     fn name(&self) -> &str { "cruise" }
//! }
//! ```

mod aggressive;
mod compound;
mod eval;
mod monitor;
mod multi;
mod observation;
mod planner;
mod scenario;

pub use aggressive::AggressiveConfig;
pub use compound::{CompoundPlanner, CompoundStats, PlanDecision, PlannerSource, WindowSource};
pub use eval::Outcome;
pub use monitor::{MonitorVerdict, RuntimeMonitor};
pub use multi::{
    merge_windows, merge_windows_in_place, pair_time_slack, platoon_eta, platoon_slack,
    MultiCompoundPlanner, PreparedPlan, DEFAULT_MERGE_GAP,
};
pub use observation::Observation;
pub use planner::Planner;
pub use scenario::Scenario;
