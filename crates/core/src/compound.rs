use cv_dynamics::VehicleState;
use cv_estimation::VehicleEstimate;

use crate::{AggressiveConfig, MonitorVerdict, Observation, Planner, RuntimeMonitor, Scenario};

/// Which planner produced the acceleration of a step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerSource {
    /// The embedded NN-based planner `κ_n`.
    NeuralNetwork,
    /// The emergency planner `κ_e`.
    Emergency,
}

/// Which unsafe-set estimate the embedded NN planner is fed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowSource {
    /// The sound conservative window (paper Eq. 7) — the *basic* compound
    /// planner (`κ_cb`).
    Conservative,
    /// The aggressive window (paper Eq. 8) with the given buffers — the
    /// *ultimate* compound planner (`κ_cu`).
    Aggressive(AggressiveConfig),
}

/// One planning decision of the compound planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanDecision {
    /// Acceleration command for this control step (m/s², unclamped).
    pub accel: f64,
    /// Who produced it.
    pub source: PlannerSource,
}

/// Running counters over an episode (emergency frequency in the paper's
/// tables is `emergency_steps / total_steps`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompoundStats {
    /// Steps decided by the emergency planner.
    pub emergency_steps: u64,
    /// Total steps planned.
    pub total_steps: u64,
}

impl CompoundStats {
    /// Fraction of steps decided by `κ_e` (0 when no steps were planned).
    pub fn emergency_frequency(&self) -> f64 {
        if self.total_steps == 0 {
            0.0
        } else {
            self.emergency_steps as f64 / self.total_steps as f64
        }
    }
}

/// The compound planner `κ_c` of paper Section III: runtime monitor +
/// emergency planner wrapped around an arbitrary NN-based planner.
///
/// Construction chooses between the paper's two variants through
/// [`WindowSource`]:
///
/// * `κ_cb` (basic): `WindowSource::Conservative` — the NN sees the same
///   sound window the monitor uses.
/// * `κ_cu` (ultimate): `WindowSource::Aggressive` — the NN sees the
///   compact Eq. 8 window while the monitor keeps the sound one.
///
/// The information-filter half of the "ultimate" configuration lives in the
/// estimator that produces the [`VehicleEstimate`] passed to
/// [`CompoundPlanner::plan`]; see `cv_estimation::FilterMode`.
///
/// # Example
///
/// See the `quickstart` example in the workspace root, which wraps a trained
/// NN planner for the unprotected left turn.
#[derive(Debug, Clone)]
pub struct CompoundPlanner<S, P> {
    scenario: S,
    nn: P,
    window_source: WindowSource,
    monitor: RuntimeMonitor,
    stats: CompoundStats,
}

impl<S: Scenario, P: Planner> CompoundPlanner<S, P> {
    /// Wraps `nn` for `scenario`, feeding it windows per `window_source`.
    pub fn new(scenario: S, nn: P, window_source: WindowSource) -> Self {
        Self {
            scenario,
            nn,
            window_source,
            monitor: RuntimeMonitor::new(),
            stats: CompoundStats::default(),
        }
    }

    /// The basic compound planner `κ_cb` (conservative window for the NN).
    pub fn basic(scenario: S, nn: P) -> Self {
        Self::new(scenario, nn, WindowSource::Conservative)
    }

    /// The ultimate compound planner `κ_cu` (aggressive window for the NN).
    pub fn ultimate(scenario: S, nn: P, config: AggressiveConfig) -> Self {
        Self::new(scenario, nn, WindowSource::Aggressive(config))
    }

    /// The wrapped scenario.
    pub fn scenario(&self) -> &S {
        &self.scenario
    }

    /// The embedded NN planner.
    pub fn nn(&self) -> &P {
        &self.nn
    }

    /// Episode statistics so far.
    pub fn stats(&self) -> CompoundStats {
        self.stats
    }

    /// Clears the episode statistics and resets the embedded planner.
    pub fn reset(&mut self) {
        self.stats = CompoundStats::default();
        self.nn.reset();
    }

    /// Plans one control step.
    ///
    /// `estimate` is the (filtered) belief about the conflicting vehicle; it
    /// must come from a sound estimator for the safety guarantee (paper
    /// §III-E) to hold.
    pub fn plan(
        &mut self,
        time: f64,
        ego: &VehicleState,
        estimate: &VehicleEstimate,
    ) -> PlanDecision {
        self.stats.total_steps += 1;
        match self.monitor.check(&self.scenario, time, ego, estimate) {
            MonitorVerdict::Emergency { window } => {
                self.stats.emergency_steps += 1;
                PlanDecision {
                    accel: self.scenario.emergency_accel(time, ego, window),
                    source: PlannerSource::Emergency,
                }
            }
            MonitorVerdict::Nominal { window } => {
                let nn_window = match self.window_source {
                    WindowSource::Conservative => window,
                    WindowSource::Aggressive(cfg) => {
                        self.scenario.aggressive_window(time, estimate, &cfg)
                    }
                };
                let obs = Observation::new(time, *ego, nn_window);
                PlanDecision {
                    accel: self.nn.plan(&obs),
                    source: PlannerSource::NeuralNetwork,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_estimation::Interval;

    /// Toy scenario: conflict zone starts at position 10 while the window is
    /// open until t = 5; boundary band is [9, 10).
    struct Wall;

    impl Scenario for Wall {
        fn target_reached(&self, _t: f64, ego: &VehicleState) -> bool {
            ego.position >= 20.0
        }

        fn collision(&self, ego: &VehicleState, _other: &VehicleState) -> bool {
            ego.position >= 10.0
        }

        fn conservative_window(&self, t: f64, _e: &VehicleEstimate) -> Option<Interval> {
            if t < 5.0 {
                Some(Interval::new(t, 5.0))
            } else {
                None
            }
        }

        fn nominal_window(&self, t: f64, e: &VehicleEstimate) -> Option<Interval> {
            self.conservative_window(t, e)
        }

        fn aggressive_window(
            &self,
            t: f64,
            _e: &VehicleEstimate,
            _c: &AggressiveConfig,
        ) -> Option<Interval> {
            // Aggressive: pretend the window closes one second earlier.
            if t < 4.0 {
                Some(Interval::new(t, 4.0))
            } else {
                None
            }
        }

        fn in_unsafe_set(&self, _t: f64, ego: &VehicleState, w: Option<Interval>) -> bool {
            w.is_some() && ego.position >= 10.0
        }

        fn in_boundary_safe_set(&self, _t: f64, ego: &VehicleState, w: Option<Interval>) -> bool {
            w.is_some() && (9.0..10.0).contains(&ego.position)
        }

        fn emergency_accel(&self, _t: f64, _ego: &VehicleState, _w: Option<Interval>) -> f64 {
            -4.0
        }
    }

    /// Records the windows it was shown.
    struct Probe {
        windows: Vec<Option<Interval>>,
    }

    impl Planner for Probe {
        fn plan(&mut self, obs: &Observation) -> f64 {
            self.windows.push(obs.window);
            1.0
        }

        fn name(&self) -> &str {
            "probe"
        }
    }

    fn est() -> VehicleEstimate {
        VehicleEstimate::exact(0.0, VehicleState::at_rest())
    }

    #[test]
    fn switches_to_emergency_in_boundary_set() {
        let mut cp = CompoundPlanner::basic(Wall, Probe { windows: vec![] });
        let far = cp.plan(0.0, &VehicleState::new(0.0, 1.0, 0.0), &est());
        assert_eq!(far.source, PlannerSource::NeuralNetwork);
        assert_eq!(far.accel, 1.0);
        let near = cp.plan(0.1, &VehicleState::new(9.5, 1.0, 0.0), &est());
        assert_eq!(near.source, PlannerSource::Emergency);
        assert_eq!(near.accel, -4.0);
        assert_eq!(cp.stats().emergency_steps, 1);
        assert_eq!(cp.stats().total_steps, 2);
        assert!((cp.stats().emergency_frequency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn no_emergency_after_window_closes() {
        let mut cp = CompoundPlanner::basic(Wall, Probe { windows: vec![] });
        let d = cp.plan(6.0, &VehicleState::new(9.5, 1.0, 0.0), &est());
        assert_eq!(d.source, PlannerSource::NeuralNetwork);
    }

    #[test]
    fn ultimate_feeds_aggressive_window_to_nn() {
        let mut cp =
            CompoundPlanner::ultimate(Wall, Probe { windows: vec![] }, AggressiveConfig::default());
        cp.plan(0.0, &VehicleState::new(0.0, 1.0, 0.0), &est());
        assert_eq!(cp.nn().windows[0], Some(Interval::new(0.0, 4.0)));

        let mut basic = CompoundPlanner::basic(Wall, Probe { windows: vec![] });
        basic.plan(0.0, &VehicleState::new(0.0, 1.0, 0.0), &est());
        assert_eq!(basic.nn().windows[0], Some(Interval::new(0.0, 5.0)));
    }

    #[test]
    fn reset_clears_stats() {
        let mut cp = CompoundPlanner::basic(Wall, Probe { windows: vec![] });
        cp.plan(0.0, &VehicleState::new(9.5, 1.0, 0.0), &est());
        cp.reset();
        assert_eq!(cp.stats(), CompoundStats::default());
    }
}
