/// Outcome of one simulated episode, evaluated on ground truth.
///
/// Implements the evaluation function `η` of paper Section II-A:
///
/// ```text
/// η = −1    if the unsafe set was entered before reaching the target,
/// η = 1/t_r if the target set was reached at time t_r,
/// η = 0     otherwise (timeout).
/// ```
///
/// # Example
///
/// ```
/// use safe_shield::Outcome;
///
/// assert_eq!(Outcome::Collision { time: 3.2 }.eta(), -1.0);
/// assert_eq!(Outcome::Reached { time: 8.0 }.eta(), 0.125);
/// assert_eq!(Outcome::Timeout.eta(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// Safety was violated at `time` before the target was reached.
    Collision {
        /// Time of the first violation (s).
        time: f64,
    },
    /// The target set was reached safely at `time` (the reaching time `t_r`).
    Reached {
        /// Reaching time `t_r` (s).
        time: f64,
    },
    /// Neither happened within the horizon.
    Timeout,
}

impl Outcome {
    /// The evaluation value `η`.
    ///
    /// # Panics
    ///
    /// Panics if a [`Outcome::Reached`] time is not strictly positive.
    pub fn eta(&self) -> f64 {
        match *self {
            Outcome::Collision { .. } => -1.0,
            Outcome::Reached { time } => {
                assert!(time > 0.0, "reaching time must be positive, got {time}");
                1.0 / time
            }
            Outcome::Timeout => 0.0,
        }
    }

    /// `true` if no safety violation occurred.
    pub fn is_safe(&self) -> bool {
        !matches!(self, Outcome::Collision { .. })
    }

    /// The reaching time, if the target was reached.
    pub fn reaching_time(&self) -> Option<f64> {
        match *self {
            Outcome::Reached { time } => Some(time),
            _ => None,
        }
    }
}

impl std::fmt::Display for Outcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Collision { time } => write!(f, "collision at {time:.2}s"),
            Outcome::Reached { time } => write!(f, "reached target at {time:.2}s"),
            Outcome::Timeout => write!(f, "timeout"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eta_ordering_prefers_safety_then_speed() {
        let crash = Outcome::Collision { time: 1.0 };
        let slow = Outcome::Reached { time: 20.0 };
        let fast = Outcome::Reached { time: 5.0 };
        let stuck = Outcome::Timeout;
        assert!(crash.eta() < stuck.eta());
        assert!(stuck.eta() < slow.eta());
        assert!(slow.eta() < fast.eta());
    }

    #[test]
    fn accessors() {
        assert!(Outcome::Timeout.is_safe());
        assert!(!Outcome::Collision { time: 1.0 }.is_safe());
        assert_eq!(Outcome::Reached { time: 4.0 }.reaching_time(), Some(4.0));
        assert_eq!(Outcome::Timeout.reaching_time(), None);
    }

    #[test]
    #[should_panic]
    fn zero_reaching_time_panics() {
        let _ = Outcome::Reached { time: 0.0 }.eta();
    }
}
