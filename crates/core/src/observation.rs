use cv_dynamics::VehicleState;
use cv_estimation::Interval;

/// The input a planner sees at one control step.
///
/// Matches the NN input of the paper's case study (Section IV): the time
/// `t`, the ego state `(p_0(t), v_0(t))`, and the estimated passing-time
/// window `[τ_1,min(t), τ_1,max(t)]` of the oncoming vehicle. Which window
/// (naive, conservative Eq. 7, or aggressive Eq. 8) gets put here is decided
/// by the surrounding planner stack — the planner itself is window-agnostic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Observation {
    /// Current time, in seconds.
    pub time: f64,
    /// Ego vehicle state.
    pub ego: VehicleState,
    /// Estimated conflict descriptor of the conflicting vehicle (for the
    /// left turn: the passing-time window in absolute times); `None` when
    /// the conflict is already over.
    pub window: Option<Interval>,
}

impl Observation {
    /// Number of features produced by [`Observation::features`].
    pub const FEATURES: usize = 5;

    /// Sentinel value of the relative window features when the conflict is
    /// already over (the window is `None`).
    pub const WINDOW_PASSED: f64 = -1.0;

    /// Creates an observation.
    pub fn new(time: f64, ego: VehicleState, window: Option<Interval>) -> Self {
        Self { time, ego, window }
    }

    /// Encodes the observation as the five NN input features
    /// `[t, p_0, v_0, τ_1,min − t, τ_1,max − t]`, with the relative window
    /// replaced by [`Observation::WINDOW_PASSED`] when the conflict is over.
    ///
    /// Relative (time-to-window) encoding keeps the planner translation-
    /// invariant in time, which makes behaviour cloning far more sample-
    /// efficient than feeding absolute `τ` values.
    pub fn features(&self) -> [f64; Self::FEATURES] {
        let (rel_min, rel_max) = match self.window {
            Some(w) => ((w.lo() - self.time).max(0.0), (w.hi() - self.time).max(0.0)),
            None => (Self::WINDOW_PASSED, Self::WINDOW_PASSED),
        };
        [
            self.time,
            self.ego.position,
            self.ego.velocity,
            rel_min,
            rel_max,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn features_encode_relative_window() {
        let obs = Observation::new(
            2.0,
            VehicleState::new(-10.0, 8.0, 0.0),
            Some(Interval::new(5.0, 7.0)),
        );
        assert_eq!(obs.features(), [2.0, -10.0, 8.0, 3.0, 5.0]);
    }

    #[test]
    fn passed_window_uses_sentinel() {
        let obs = Observation::new(2.0, VehicleState::at_rest(), None);
        let f = obs.features();
        assert_eq!(f[3], Observation::WINDOW_PASSED);
        assert_eq!(f[4], Observation::WINDOW_PASSED);
    }

    #[test]
    fn window_in_the_past_clamps_to_zero() {
        // A still-Some window whose start is already behind `t` clamps the
        // relative start at 0 (the vehicle may be inside the zone *now*).
        let obs = Observation::new(6.0, VehicleState::at_rest(), Some(Interval::new(5.0, 7.0)));
        let f = obs.features();
        assert_eq!(f[3], 0.0);
        assert_eq!(f[4], 1.0);
    }
}
