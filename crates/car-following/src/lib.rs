//! Car-following case study: the *distance-gap* unsafe set of the paper's
//! own system model (Section II-A):
//!
//! > *"if the ego vehicle `C_0` and another vehicle `C_i` are on the same
//! > lane, `C_0` must keep a distance gap with `C_i` to avoid collision.
//! > Therefore, the unsafe set could be defined as
//! > `X_u = {x(t) | |p_0(t) − p_i(t)| < p_gap}`."*
//!
//! The left-turn crate reproduces the paper's *evaluated* case study; this
//! crate implements the paper's *other* example to demonstrate that the
//! `safe-shield` framework ([`safe_shield::Scenario`],
//! [`safe_shield::CompoundPlanner`]) is genuinely scenario-agnostic: wrap any
//! cruise controller — however reckless — and the runtime monitor plus the
//! RSS-style emergency braking law guarantee the gap.
//!
//! Here the scenario's *conflict descriptor* interval carries the lead
//! vehicle's **position bound** (both vehicles share one forward frame), not
//! a passing-time window.
//!
//! # Example
//!
//! ```
//! use car_following::{CarFollowingScenario, CruisePlanner};
//! use cv_dynamics::{VehicleLimits, VehicleState};
//! use safe_shield::{CompoundPlanner, Scenario};
//! use cv_estimation::VehicleEstimate;
//!
//! let scenario = CarFollowingScenario::highway_default()?;
//! // A reckless cruise controller shielded by the framework:
//! let mut shielded = CompoundPlanner::basic(scenario, CruisePlanner::reckless(&scenario));
//! let ego = VehicleState::new(0.0, 20.0, 0.0);
//! let lead = VehicleEstimate::exact(0.0, VehicleState::new(60.0, 15.0, 0.0));
//! let decision = shielded.plan(0.0, &ego, &lead);
//! assert!(decision.accel.is_finite());
//! # Ok::<(), car_following::CarFollowingError>(())
//! ```

mod cruise;
mod scenario;

pub use cruise::CruisePlanner;
pub use scenario::{CarFollowingError, CarFollowingScenario};
