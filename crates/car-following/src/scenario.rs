use cv_dynamics::{braking_distance, VehicleLimits, VehicleState};
use cv_estimation::{Interval, VehicleEstimate};
use safe_shield::{AggressiveConfig, Scenario};

/// Errors constructing a [`CarFollowingScenario`].
#[derive(Debug, Clone, PartialEq)]
pub enum CarFollowingError {
    /// `p_gap` must be positive and finite.
    InvalidGap,
    /// The control period must be positive and finite.
    InvalidControlPeriod,
    /// Vehicle limits were rejected.
    Limits(cv_dynamics::LimitsError),
}

impl std::fmt::Display for CarFollowingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CarFollowingError::InvalidGap => write!(f, "distance gap must be positive"),
            CarFollowingError::InvalidControlPeriod => {
                write!(f, "control period must be positive and finite")
            }
            CarFollowingError::Limits(e) => write!(f, "invalid vehicle limits: {e}"),
        }
    }
}

impl std::error::Error for CarFollowingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CarFollowingError::Limits(e) => Some(e),
            _ => None,
        }
    }
}

impl From<cv_dynamics::LimitsError> for CarFollowingError {
    fn from(e: cv_dynamics::LimitsError) -> Self {
        CarFollowingError::Limits(e)
    }
}

/// Same-lane car following with the paper's distance-gap unsafe set
/// `X_u = {x | p_lead − p_0 < p_gap}`.
///
/// Both vehicles live in one shared forward frame. The conflict descriptor
/// is the lead vehicle's sound *position bound*; the worst-case assumption
/// behind the safety sets is an instantly stopping lead (the most
/// conservative RSS-style contract, which needs no velocity information).
///
/// The monitor works against a slightly inflated gap
/// (`p_gap + MONITOR_GAP_MARGIN`) so floating-point drift on the exact
/// stopping trajectory can never produce a real-gap violation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarFollowingScenario {
    ego_limits: VehicleLimits,
    lead_limits: VehicleLimits,
    /// Minimum distance gap `p_gap` (m).
    p_gap: f64,
    /// Target position for the evaluation function.
    p_target: f64,
    dt_c: f64,
}

impl CarFollowingScenario {
    /// Monitor-side inflation of the gap (m); see the type docs.
    pub const MONITOR_GAP_MARGIN: f64 = 0.05;

    /// Emergency braking aims to stop this far short of the inflated gap.
    pub const STOP_MARGIN: f64 = 0.2;

    /// Creates a scenario.
    ///
    /// # Errors
    ///
    /// Returns a [`CarFollowingError`] if `p_gap` or `dt_c` are invalid.
    pub fn new(
        ego_limits: VehicleLimits,
        lead_limits: VehicleLimits,
        p_gap: f64,
        p_target: f64,
        dt_c: f64,
    ) -> Result<Self, CarFollowingError> {
        if !(p_gap > 0.0 && p_gap.is_finite()) {
            return Err(CarFollowingError::InvalidGap);
        }
        if !(dt_c > 0.0 && dt_c.is_finite()) {
            return Err(CarFollowingError::InvalidControlPeriod);
        }
        Ok(Self {
            ego_limits,
            lead_limits,
            p_gap,
            p_target,
            dt_c,
        })
    }

    /// A highway-like default: ego `v ∈ [0, 30]`, `a ∈ [−8, 3]`; lead
    /// `v ∈ [0, 30]`, `a ∈ [−8, 2]`; `p_gap = 5 m`; target at 500 m;
    /// `Δt_c = 0.05 s`.
    ///
    /// # Errors
    ///
    /// Never fails for these constants; the `Result` keeps the constructor
    /// signature uniform with [`CarFollowingScenario::new`].
    pub fn highway_default() -> Result<Self, CarFollowingError> {
        Self::new(
            VehicleLimits::new(0.0, 30.0, -8.0, 3.0)?,
            VehicleLimits::new(0.0, 30.0, -8.0, 2.0)?,
            5.0,
            500.0,
            0.05,
        )
    }

    /// The ego limits.
    pub fn ego_limits(&self) -> VehicleLimits {
        self.ego_limits
    }

    /// The lead vehicle's limits.
    pub fn lead_limits(&self) -> VehicleLimits {
        self.lead_limits
    }

    /// The required distance gap `p_gap` (m).
    pub fn p_gap(&self) -> f64 {
        self.p_gap
    }

    /// The target position (m).
    pub fn p_target(&self) -> f64 {
        self.p_target
    }

    /// Control period `Δt_c` (s).
    pub fn dt_c(&self) -> f64 {
        self.dt_c
    }

    /// Stopping slack against the *worst-case* (instantly stopped) lead at
    /// its soundly estimated rear-most position `lead_lo`:
    /// `slack = lead_lo − p_gap' − p_0 − d_b(v_0)`.
    pub fn slack(&self, ego: &VehicleState, lead_lo: f64) -> f64 {
        let d_b = braking_distance(
            self.ego_limits.clamp_velocity(ego.velocity),
            self.ego_limits.a_min(),
        );
        lead_lo - (self.p_gap + Self::MONITOR_GAP_MARGIN) - ego.position - d_b
    }

    /// One-step worst-case slack decrease (same derivation as the left-turn
    /// boundary bound: the lead bound can only move forward, the ego's
    /// braking distance grows fastest under full throttle).
    pub fn boundary_threshold(&self, ego: &VehicleState) -> f64 {
        let v = self.ego_limits.clamp_velocity(ego.velocity);
        let travel = v * self.dt_c + 0.5 * self.ego_limits.a_max() * self.dt_c * self.dt_c;
        travel * (1.0 - self.ego_limits.a_max() / self.ego_limits.a_min())
    }
}

impl Scenario for CarFollowingScenario {
    fn target_reached(&self, _time: f64, ego: &VehicleState) -> bool {
        ego.position >= self.p_target
    }

    fn collision(&self, ego: &VehicleState, other: &VehicleState) -> bool {
        (other.position - ego.position).abs() < self.p_gap
    }

    fn conservative_window(&self, _time: f64, estimate: &VehicleEstimate) -> Option<Interval> {
        // The conflict descriptor is the lead's sound position bound. Once
        // the ego has passed the target there is nothing left to protect.
        Some(estimate.position)
    }

    fn nominal_window(&self, _time: f64, estimate: &VehicleEstimate) -> Option<Interval> {
        Some(Interval::point(estimate.nominal.position))
    }

    fn aggressive_window(
        &self,
        _time: f64,
        estimate: &VehicleEstimate,
        config: &AggressiveConfig,
    ) -> Option<Interval> {
        // Eq. 8 analogue: trust the nominal position up to a small buffer
        // (the `v_buf` metres play the role of the velocity buffer).
        let sound = estimate.position;
        let tight = Interval::centered(estimate.nominal.position, config.v_buf.max(0.0));
        Some(tight.intersect(&sound).unwrap_or(sound))
    }

    fn in_unsafe_set(&self, _time: f64, ego: &VehicleState, window: Option<Interval>) -> bool {
        let Some(lead) = window else { return false };
        lead.lo() - ego.position < self.p_gap
    }

    fn in_boundary_safe_set(
        &self,
        time: f64,
        ego: &VehicleState,
        window: Option<Interval>,
    ) -> bool {
        let Some(lead) = window else { return false };
        if self.in_unsafe_set(time, ego, window) {
            return false;
        }
        self.slack(ego, lead.lo()) < self.boundary_threshold(ego)
    }

    fn emergency_accel(&self, _time: f64, ego: &VehicleState, window: Option<Interval>) -> f64 {
        let Some(lead) = window else { return 0.0 };
        // Brake to stop STOP_MARGIN short of the inflated gap behind the
        // worst-case lead position; full braking when that is already lost.
        let stop_at = lead.lo() - self.p_gap - Self::MONITOR_GAP_MARGIN - Self::STOP_MARGIN;
        let gap = stop_at - ego.position;
        if gap <= 1e-9 {
            self.ego_limits.a_min()
        } else {
            let v = self.ego_limits.clamp_velocity(ego.velocity);
            self.ego_limits.clamp_accel(-v * v / (2.0 * gap))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> CarFollowingScenario {
        CarFollowingScenario::highway_default().unwrap()
    }

    fn lead_at(p: f64) -> Option<Interval> {
        Some(Interval::new(p - 1.0, p + 1.0))
    }

    #[test]
    fn construction_validates() {
        let lims = VehicleLimits::new(0.0, 30.0, -8.0, 3.0).unwrap();
        assert!(matches!(
            CarFollowingScenario::new(lims, lims, 0.0, 100.0, 0.05),
            Err(CarFollowingError::InvalidGap)
        ));
        assert!(matches!(
            CarFollowingScenario::new(lims, lims, 5.0, 100.0, 0.0),
            Err(CarFollowingError::InvalidControlPeriod)
        ));
    }

    #[test]
    fn unsafe_set_matches_paper_definition() {
        let s = scenario();
        // Worst-case lead rear at 19 m, ego at 15 m: gap 4 < 5 => unsafe.
        let ego = VehicleState::new(15.0, 10.0, 0.0);
        assert!(s.in_unsafe_set(0.0, &ego, lead_at(20.0)));
        // Gap 9 >= 5: safe.
        assert!(!s.in_unsafe_set(0.0, &ego, lead_at(25.0)));
        // No lead: nothing unsafe.
        assert!(!s.in_unsafe_set(0.0, &ego, None));
    }

    #[test]
    fn boundary_band_sits_above_zero_slack() {
        let s = scenario();
        // Ego at 20 m/s needs 25 m to stop; lead rear bound at ego + 25 +
        // gap + ε puts slack in the band.
        let ego = VehicleState::new(0.0, 20.0, 0.0);
        let d_b = 25.0;
        let lead_lo = d_b + 5.0 + CarFollowingScenario::MONITOR_GAP_MARGIN + 0.05;
        let w = Some(Interval::point(lead_lo));
        assert!(s.slack(&ego, lead_lo) >= 0.0);
        assert!(s.in_boundary_safe_set(0.0, &ego, w));
        // Far lead: not in the band.
        assert!(!s.in_boundary_safe_set(0.0, &ego, Some(Interval::point(200.0))));
    }

    #[test]
    fn emergency_brakes_proportionally_and_fully_when_late() {
        let s = scenario();
        let ego = VehicleState::new(0.0, 20.0, 0.0);
        // Plenty of room: gentle braking.
        let far = s.emergency_accel(0.0, &ego, Some(Interval::point(100.0)));
        assert!(far < 0.0 && far > s.ego_limits().a_min());
        // No room: full braking.
        let near = s.emergency_accel(0.0, &ego, Some(Interval::point(6.0)));
        assert_eq!(near, s.ego_limits().a_min());
        // No lead: coast.
        assert_eq!(s.emergency_accel(0.0, &ego, None), 0.0);
    }

    /// Eq. 4 analogue: from any boundary-band state, braking under κ_e with
    /// the lead bound frozen (the lead can only move away) never closes the
    /// real gap below `p_gap`.
    #[test]
    fn emergency_invariance_over_a_state_grid() {
        let s = scenario();
        let lims = s.ego_limits();
        let mut checked = 0;
        for vi in 0..=30 {
            let v = vi as f64;
            for gi in 0..600 {
                let lead_lo = 5.0 + gi as f64 * 0.25;
                let ego = VehicleState::new(0.0, v, 0.0);
                let w = Some(Interval::point(lead_lo));
                if !s.in_boundary_safe_set(0.0, &ego, w) {
                    continue;
                }
                if s.slack(&ego, lead_lo) < 0.0 {
                    // Already committed: unreachable under the shield (the
                    // band keeps slack >= 0 by induction), and no braking
                    // law can save it against an instantly stopped lead.
                    continue;
                }
                checked += 1;
                let mut cur = ego;
                for step in 0..4000 {
                    let a = s.emergency_accel(step as f64 * s.dt_c(), &cur, w);
                    cur = lims.step(&cur, a, s.dt_c());
                    assert!(
                        lead_lo - cur.position >= s.p_gap(),
                        "gap violated from v={v}, lead_lo={lead_lo} at step {step}"
                    );
                    if cur.velocity <= 1e-3 {
                        break;
                    }
                }
            }
        }
        assert!(checked > 100, "only {checked} boundary states sampled");
    }

    #[test]
    fn aggressive_window_is_tighter_but_inside_sound_bound() {
        let s = scenario();
        let est = VehicleEstimate::from_intervals(
            0.0,
            Interval::new(40.0, 50.0),
            Interval::new(10.0, 12.0),
            Interval::point(0.0),
        );
        let sound = s.conservative_window(0.0, &est).unwrap();
        let aggr = s
            .aggressive_window(0.0, &est, &AggressiveConfig::new(1.0, 2.0))
            .unwrap();
        assert!(sound.contains_interval(&aggr));
        assert!(aggr.width() < sound.width());
    }
}
