use cv_dynamics::VehicleLimits;
use safe_shield::{Observation, Planner};

use crate::CarFollowingScenario;

/// A simple cruise controller for the car-following scenario.
///
/// Two personalities:
///
/// * [`CruisePlanner::reckless`] — tracks the speed limit and **ignores the
///   lead vehicle entirely**. On its own it rear-ends slower traffic; inside
///   a [`safe_shield::CompoundPlanner`] the monitor + emergency braking keep
///   the gap, demonstrating the framework's black-box wrapping on a second
///   scenario.
/// * [`CruisePlanner::adaptive`] — a proportional ACC that additionally
///   regulates a time headway to the lead's estimated position (read from
///   the observation's conflict descriptor).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CruisePlanner {
    limits: VehicleLimits,
    desired_speed: f64,
    /// Desired time headway (s); `None` = ignore the lead.
    headway: Option<f64>,
    /// Required standstill gap used by the headway law (m).
    standstill_gap: f64,
    /// Speed-tracking time constant (s).
    tau: f64,
}

impl CruisePlanner {
    /// Full-speed cruising with no regard for the lead vehicle.
    pub fn reckless(scenario: &CarFollowingScenario) -> Self {
        Self {
            limits: scenario.ego_limits(),
            desired_speed: scenario.ego_limits().v_max(),
            headway: None,
            standstill_gap: scenario.p_gap(),
            tau: 0.5,
        }
    }

    /// Proportional adaptive cruise control with the given time headway.
    ///
    /// # Panics
    ///
    /// Panics if `headway` is not positive.
    pub fn adaptive(scenario: &CarFollowingScenario, headway: f64) -> Self {
        assert!(headway > 0.0, "headway must be positive, got {headway}");
        Self {
            limits: scenario.ego_limits(),
            desired_speed: scenario.ego_limits().v_max(),
            headway: Some(headway),
            standstill_gap: scenario.p_gap(),
            tau: 0.5,
        }
    }

    /// Overrides the cruise set-speed.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is negative.
    pub fn with_desired_speed(mut self, speed: f64) -> Self {
        assert!(speed >= 0.0, "desired speed must be nonnegative");
        self.desired_speed = self.limits.clamp_velocity(speed);
        self
    }
}

impl Planner for CruisePlanner {
    fn plan(&mut self, obs: &Observation) -> f64 {
        let v = self.limits.clamp_velocity(obs.ego.velocity);
        let cruise = (self.desired_speed - v) / self.tau;
        let Some(headway) = self.headway else {
            return self.limits.clamp_accel(cruise);
        };
        let Some(lead) = obs.window else {
            return self.limits.clamp_accel(cruise);
        };
        // ACC: regulate gap toward standstill_gap + headway·v.
        let gap = lead.lo() - obs.ego.position;
        let desired_gap = self.standstill_gap + headway * v;
        let follow = 0.8 * (gap - desired_gap) / headway;
        self.limits.clamp_accel(cruise.min(follow))
    }

    fn name(&self) -> &str {
        if self.headway.is_some() {
            "cruise-adaptive"
        } else {
            "cruise-reckless"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cv_dynamics::VehicleState;
    use cv_estimation::Interval;

    fn scenario() -> CarFollowingScenario {
        CarFollowingScenario::highway_default().unwrap()
    }

    fn obs(p: f64, v: f64, lead: Option<f64>) -> Observation {
        Observation::new(0.0, VehicleState::new(p, v, 0.0), lead.map(Interval::point))
    }

    #[test]
    fn reckless_ignores_the_lead() {
        let s = scenario();
        let mut p = CruisePlanner::reckless(&s);
        let clear = p.plan(&obs(0.0, 10.0, None));
        let blocked = p.plan(&obs(0.0, 10.0, Some(12.0)));
        assert_eq!(clear, blocked, "reckless must not react to the lead");
        assert!(clear > 0.0);
    }

    #[test]
    fn adaptive_backs_off_when_close() {
        let s = scenario();
        let mut p = CruisePlanner::adaptive(&s, 1.5);
        let close = p.plan(&obs(0.0, 20.0, Some(15.0)));
        assert!(
            close < 0.0,
            "should brake at 15 m gap doing 20 m/s: {close}"
        );
        let far = p.plan(&obs(0.0, 20.0, Some(200.0)));
        assert!(far > 0.0, "should accelerate with 200 m of room");
    }

    #[test]
    fn speeds_settle_at_the_set_speed() {
        let s = scenario();
        let mut p = CruisePlanner::reckless(&s).with_desired_speed(25.0);
        let lims = s.ego_limits();
        let mut ego = VehicleState::new(0.0, 0.0, 0.0);
        for i in 0..2000 {
            let a = p.plan(&Observation::new(i as f64 * 0.05, ego, None));
            ego = lims.step(&ego, a, 0.05);
        }
        assert!(
            (ego.velocity - 25.0).abs() < 0.2,
            "settled at {}",
            ego.velocity
        );
    }

    #[test]
    fn names_distinguish_personalities() {
        let s = scenario();
        assert_ne!(
            CruisePlanner::reckless(&s).name(),
            CruisePlanner::adaptive(&s, 1.0).name()
        );
    }
}
