/root/repo/target/release/libcv_rng.rlib: /root/repo/crates/rng/src/lib.rs
