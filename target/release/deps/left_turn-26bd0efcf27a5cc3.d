/root/repo/target/release/deps/left_turn-26bd0efcf27a5cc3.d: crates/left-turn/src/lib.rs crates/left-turn/src/geometry.rs crates/left-turn/src/scenario.rs crates/left-turn/src/tau.rs crates/left-turn/src/verify.rs

/root/repo/target/release/deps/libleft_turn-26bd0efcf27a5cc3.rlib: crates/left-turn/src/lib.rs crates/left-turn/src/geometry.rs crates/left-turn/src/scenario.rs crates/left-turn/src/tau.rs crates/left-turn/src/verify.rs

/root/repo/target/release/deps/libleft_turn-26bd0efcf27a5cc3.rmeta: crates/left-turn/src/lib.rs crates/left-turn/src/geometry.rs crates/left-turn/src/scenario.rs crates/left-turn/src/tau.rs crates/left-turn/src/verify.rs

crates/left-turn/src/lib.rs:
crates/left-turn/src/geometry.rs:
crates/left-turn/src/scenario.rs:
crates/left-turn/src/tau.rs:
crates/left-turn/src/verify.rs:
