/root/repo/target/release/deps/exp_fig5-e9352aa2c8eae9e0.d: crates/bench/src/bin/exp_fig5.rs

/root/repo/target/release/deps/exp_fig5-e9352aa2c8eae9e0: crates/bench/src/bin/exp_fig5.rs

crates/bench/src/bin/exp_fig5.rs:
