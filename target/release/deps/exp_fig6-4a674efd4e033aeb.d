/root/repo/target/release/deps/exp_fig6-4a674efd4e033aeb.d: crates/bench/src/bin/exp_fig6.rs

/root/repo/target/release/deps/exp_fig6-4a674efd4e033aeb: crates/bench/src/bin/exp_fig6.rs

crates/bench/src/bin/exp_fig6.rs:
