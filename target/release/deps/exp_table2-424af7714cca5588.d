/root/repo/target/release/deps/exp_table2-424af7714cca5588.d: crates/bench/src/bin/exp_table2.rs

/root/repo/target/release/deps/exp_table2-424af7714cca5588: crates/bench/src/bin/exp_table2.rs

crates/bench/src/bin/exp_table2.rs:
