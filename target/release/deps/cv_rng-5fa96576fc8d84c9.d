/root/repo/target/release/deps/cv_rng-5fa96576fc8d84c9.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/libcv_rng-5fa96576fc8d84c9.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/libcv_rng-5fa96576fc8d84c9.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
