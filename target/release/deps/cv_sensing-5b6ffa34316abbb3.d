/root/repo/target/release/deps/cv_sensing-5b6ffa34316abbb3.d: crates/sensing/src/lib.rs crates/sensing/src/measurement.rs crates/sensing/src/sensor.rs

/root/repo/target/release/deps/libcv_sensing-5b6ffa34316abbb3.rlib: crates/sensing/src/lib.rs crates/sensing/src/measurement.rs crates/sensing/src/sensor.rs

/root/repo/target/release/deps/libcv_sensing-5b6ffa34316abbb3.rmeta: crates/sensing/src/lib.rs crates/sensing/src/measurement.rs crates/sensing/src/sensor.rs

crates/sensing/src/lib.rs:
crates/sensing/src/measurement.rs:
crates/sensing/src/sensor.rs:
