/root/repo/target/release/deps/cv_server-ca1aff0787ca9fc3.d: crates/server/src/lib.rs crates/server/src/client.rs crates/server/src/protocol.rs crates/server/src/queue.rs crates/server/src/server.rs crates/server/src/wire.rs crates/server/src/worker.rs

/root/repo/target/release/deps/libcv_server-ca1aff0787ca9fc3.rlib: crates/server/src/lib.rs crates/server/src/client.rs crates/server/src/protocol.rs crates/server/src/queue.rs crates/server/src/server.rs crates/server/src/wire.rs crates/server/src/worker.rs

/root/repo/target/release/deps/libcv_server-ca1aff0787ca9fc3.rmeta: crates/server/src/lib.rs crates/server/src/client.rs crates/server/src/protocol.rs crates/server/src/queue.rs crates/server/src/server.rs crates/server/src/wire.rs crates/server/src/worker.rs

crates/server/src/lib.rs:
crates/server/src/client.rs:
crates/server/src/protocol.rs:
crates/server/src/queue.rs:
crates/server/src/server.rs:
crates/server/src/wire.rs:
crates/server/src/worker.rs:
