/root/repo/target/release/deps/cv_submit-490994ea4acd8080.d: crates/server/src/bin/cv-submit.rs

/root/repo/target/release/deps/cv_submit-490994ea4acd8080: crates/server/src/bin/cv-submit.rs

crates/server/src/bin/cv-submit.rs:
