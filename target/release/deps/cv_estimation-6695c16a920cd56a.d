/root/repo/target/release/deps/cv_estimation-6695c16a920cd56a.d: crates/estimation/src/lib.rs crates/estimation/src/estimate.rs crates/estimation/src/estimator.rs crates/estimation/src/fusion.rs crates/estimation/src/interval.rs crates/estimation/src/kalman.rs crates/estimation/src/linalg.rs crates/estimation/src/reachability.rs crates/estimation/src/tracking.rs

/root/repo/target/release/deps/libcv_estimation-6695c16a920cd56a.rlib: crates/estimation/src/lib.rs crates/estimation/src/estimate.rs crates/estimation/src/estimator.rs crates/estimation/src/fusion.rs crates/estimation/src/interval.rs crates/estimation/src/kalman.rs crates/estimation/src/linalg.rs crates/estimation/src/reachability.rs crates/estimation/src/tracking.rs

/root/repo/target/release/deps/libcv_estimation-6695c16a920cd56a.rmeta: crates/estimation/src/lib.rs crates/estimation/src/estimate.rs crates/estimation/src/estimator.rs crates/estimation/src/fusion.rs crates/estimation/src/interval.rs crates/estimation/src/kalman.rs crates/estimation/src/linalg.rs crates/estimation/src/reachability.rs crates/estimation/src/tracking.rs

crates/estimation/src/lib.rs:
crates/estimation/src/estimate.rs:
crates/estimation/src/estimator.rs:
crates/estimation/src/fusion.rs:
crates/estimation/src/interval.rs:
crates/estimation/src/kalman.rs:
crates/estimation/src/linalg.rs:
crates/estimation/src/reachability.rs:
crates/estimation/src/tracking.rs:
