/root/repo/target/release/deps/cv_sim-e880884d585b9483.d: crates/sim/src/lib.rs crates/sim/src/batch.rs crates/sim/src/config.rs crates/sim/src/driver.rs crates/sim/src/episode.rs crates/sim/src/metrics.rs crates/sim/src/stack.rs crates/sim/src/training.rs

/root/repo/target/release/deps/libcv_sim-e880884d585b9483.rlib: crates/sim/src/lib.rs crates/sim/src/batch.rs crates/sim/src/config.rs crates/sim/src/driver.rs crates/sim/src/episode.rs crates/sim/src/metrics.rs crates/sim/src/stack.rs crates/sim/src/training.rs

/root/repo/target/release/deps/libcv_sim-e880884d585b9483.rmeta: crates/sim/src/lib.rs crates/sim/src/batch.rs crates/sim/src/config.rs crates/sim/src/driver.rs crates/sim/src/episode.rs crates/sim/src/metrics.rs crates/sim/src/stack.rs crates/sim/src/training.rs

crates/sim/src/lib.rs:
crates/sim/src/batch.rs:
crates/sim/src/config.rs:
crates/sim/src/driver.rs:
crates/sim/src/episode.rs:
crates/sim/src/metrics.rs:
crates/sim/src/stack.rs:
crates/sim/src/training.rs:
