/root/repo/target/release/deps/cv_dynamics-bda373030e620b0c.d: crates/dynamics/src/lib.rs crates/dynamics/src/limits.rs crates/dynamics/src/state.rs crates/dynamics/src/trajectory.rs

/root/repo/target/release/deps/libcv_dynamics-bda373030e620b0c.rlib: crates/dynamics/src/lib.rs crates/dynamics/src/limits.rs crates/dynamics/src/state.rs crates/dynamics/src/trajectory.rs

/root/repo/target/release/deps/libcv_dynamics-bda373030e620b0c.rmeta: crates/dynamics/src/lib.rs crates/dynamics/src/limits.rs crates/dynamics/src/state.rs crates/dynamics/src/trajectory.rs

crates/dynamics/src/lib.rs:
crates/dynamics/src/limits.rs:
crates/dynamics/src/state.rs:
crates/dynamics/src/trajectory.rs:
