/root/repo/target/release/deps/cv_serve-0fe74d158b8b348b.d: crates/server/src/bin/cv-serve.rs

/root/repo/target/release/deps/cv_serve-0fe74d158b8b348b: crates/server/src/bin/cv-serve.rs

crates/server/src/bin/cv-serve.rs:
