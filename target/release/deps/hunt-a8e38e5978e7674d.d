/root/repo/target/release/deps/hunt-a8e38e5978e7674d.d: crates/bench/src/bin/hunt.rs

/root/repo/target/release/deps/hunt-a8e38e5978e7674d: crates/bench/src/bin/hunt.rs

crates/bench/src/bin/hunt.rs:
