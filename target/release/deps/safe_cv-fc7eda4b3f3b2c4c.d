/root/repo/target/release/deps/safe_cv-fc7eda4b3f3b2c4c.d: src/lib.rs

/root/repo/target/release/deps/libsafe_cv-fc7eda4b3f3b2c4c.rlib: src/lib.rs

/root/repo/target/release/deps/libsafe_cv-fc7eda4b3f3b2c4c.rmeta: src/lib.rs

src/lib.rs:
