/root/repo/target/release/deps/cv_comm-d72a61e7b2e121dc.d: crates/comm/src/lib.rs crates/comm/src/channel.rs crates/comm/src/message.rs crates/comm/src/setting.rs

/root/repo/target/release/deps/libcv_comm-d72a61e7b2e121dc.rlib: crates/comm/src/lib.rs crates/comm/src/channel.rs crates/comm/src/message.rs crates/comm/src/setting.rs

/root/repo/target/release/deps/libcv_comm-d72a61e7b2e121dc.rmeta: crates/comm/src/lib.rs crates/comm/src/channel.rs crates/comm/src/message.rs crates/comm/src/setting.rs

crates/comm/src/lib.rs:
crates/comm/src/channel.rs:
crates/comm/src/message.rs:
crates/comm/src/setting.rs:
