/root/repo/target/release/deps/exp_table1-bb98cfb62b71e640.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/release/deps/exp_table1-bb98cfb62b71e640: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
