/root/repo/target/release/deps/car_following-08bddc1365c78491.d: crates/car-following/src/lib.rs crates/car-following/src/cruise.rs crates/car-following/src/scenario.rs

/root/repo/target/release/deps/libcar_following-08bddc1365c78491.rlib: crates/car-following/src/lib.rs crates/car-following/src/cruise.rs crates/car-following/src/scenario.rs

/root/repo/target/release/deps/libcar_following-08bddc1365c78491.rmeta: crates/car-following/src/lib.rs crates/car-following/src/cruise.rs crates/car-following/src/scenario.rs

crates/car-following/src/lib.rs:
crates/car-following/src/cruise.rs:
crates/car-following/src/scenario.rs:
