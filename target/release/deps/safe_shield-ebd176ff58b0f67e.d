/root/repo/target/release/deps/safe_shield-ebd176ff58b0f67e.d: crates/core/src/lib.rs crates/core/src/aggressive.rs crates/core/src/compound.rs crates/core/src/eval.rs crates/core/src/monitor.rs crates/core/src/multi.rs crates/core/src/observation.rs crates/core/src/planner.rs crates/core/src/scenario.rs

/root/repo/target/release/deps/libsafe_shield-ebd176ff58b0f67e.rlib: crates/core/src/lib.rs crates/core/src/aggressive.rs crates/core/src/compound.rs crates/core/src/eval.rs crates/core/src/monitor.rs crates/core/src/multi.rs crates/core/src/observation.rs crates/core/src/planner.rs crates/core/src/scenario.rs

/root/repo/target/release/deps/libsafe_shield-ebd176ff58b0f67e.rmeta: crates/core/src/lib.rs crates/core/src/aggressive.rs crates/core/src/compound.rs crates/core/src/eval.rs crates/core/src/monitor.rs crates/core/src/multi.rs crates/core/src/observation.rs crates/core/src/planner.rs crates/core/src/scenario.rs

crates/core/src/lib.rs:
crates/core/src/aggressive.rs:
crates/core/src/compound.rs:
crates/core/src/eval.rs:
crates/core/src/monitor.rs:
crates/core/src/multi.rs:
crates/core/src/observation.rs:
crates/core/src/planner.rs:
crates/core/src/scenario.rs:
