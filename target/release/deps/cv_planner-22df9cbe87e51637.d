/root/repo/target/release/deps/cv_planner-22df9cbe87e51637.d: crates/planner/src/lib.rs crates/planner/src/cloning.rs crates/planner/src/nn_planner.rs crates/planner/src/teacher.rs

/root/repo/target/release/deps/libcv_planner-22df9cbe87e51637.rlib: crates/planner/src/lib.rs crates/planner/src/cloning.rs crates/planner/src/nn_planner.rs crates/planner/src/teacher.rs

/root/repo/target/release/deps/libcv_planner-22df9cbe87e51637.rmeta: crates/planner/src/lib.rs crates/planner/src/cloning.rs crates/planner/src/nn_planner.rs crates/planner/src/teacher.rs

crates/planner/src/lib.rs:
crates/planner/src/cloning.rs:
crates/planner/src/nn_planner.rs:
crates/planner/src/teacher.rs:
