/root/repo/target/release/deps/exp_ablation-c747f17f99532393.d: crates/bench/src/bin/exp_ablation.rs

/root/repo/target/release/deps/exp_ablation-c747f17f99532393: crates/bench/src/bin/exp_ablation.rs

crates/bench/src/bin/exp_ablation.rs:
