/root/repo/target/release/deps/verify_shield-5167c1d371c87ed2.d: crates/bench/src/bin/verify_shield.rs

/root/repo/target/release/deps/verify_shield-5167c1d371c87ed2: crates/bench/src/bin/verify_shield.rs

crates/bench/src/bin/verify_shield.rs:
