/root/repo/target/release/deps/bench-87cf7c4e1c3e2048.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libbench-87cf7c4e1c3e2048.rlib: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/release/deps/libbench-87cf7c4e1c3e2048.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
