/root/repo/target/release/deps/cv_nn-7cc283c2d3025fff.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/error.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/matrix.rs crates/nn/src/mlp.rs crates/nn/src/optimizer.rs crates/nn/src/train.rs

/root/repo/target/release/deps/libcv_nn-7cc283c2d3025fff.rlib: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/error.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/matrix.rs crates/nn/src/mlp.rs crates/nn/src/optimizer.rs crates/nn/src/train.rs

/root/repo/target/release/deps/libcv_nn-7cc283c2d3025fff.rmeta: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/error.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/matrix.rs crates/nn/src/mlp.rs crates/nn/src/optimizer.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/error.rs:
crates/nn/src/layer.rs:
crates/nn/src/loss.rs:
crates/nn/src/matrix.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optimizer.rs:
crates/nn/src/train.rs:
