/root/repo/target/debug/examples/information_filter-7340f39d73f893cb.d: examples/information_filter.rs

/root/repo/target/debug/examples/information_filter-7340f39d73f893cb: examples/information_filter.rs

examples/information_filter.rs:
