/root/repo/target/debug/examples/unprotected_left_turn-85b816b3651a6006.d: examples/unprotected_left_turn.rs

/root/repo/target/debug/examples/unprotected_left_turn-85b816b3651a6006: examples/unprotected_left_turn.rs

examples/unprotected_left_turn.rs:
