/root/repo/target/debug/examples/platoon-d41072e824289e69.d: examples/platoon.rs

/root/repo/target/debug/examples/platoon-d41072e824289e69: examples/platoon.rs

examples/platoon.rs:
