/root/repo/target/debug/examples/custom_planner-5514b09a83530432.d: examples/custom_planner.rs

/root/repo/target/debug/examples/custom_planner-5514b09a83530432: examples/custom_planner.rs

examples/custom_planner.rs:
