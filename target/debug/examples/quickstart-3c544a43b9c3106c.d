/root/repo/target/debug/examples/quickstart-3c544a43b9c3106c.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3c544a43b9c3106c: examples/quickstart.rs

examples/quickstart.rs:
