/root/repo/target/debug/examples/comm_disturbance-5def724f62290ccd.d: examples/comm_disturbance.rs

/root/repo/target/debug/examples/comm_disturbance-5def724f62290ccd: examples/comm_disturbance.rs

examples/comm_disturbance.rs:
