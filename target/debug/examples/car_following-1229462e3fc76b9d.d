/root/repo/target/debug/examples/car_following-1229462e3fc76b9d.d: examples/car_following.rs

/root/repo/target/debug/examples/car_following-1229462e3fc76b9d: examples/car_following.rs

examples/car_following.rs:
