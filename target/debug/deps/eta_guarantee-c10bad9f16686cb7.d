/root/repo/target/debug/deps/eta_guarantee-c10bad9f16686cb7.d: tests/eta_guarantee.rs tests/common/mod.rs

/root/repo/target/debug/deps/eta_guarantee-c10bad9f16686cb7: tests/eta_guarantee.rs tests/common/mod.rs

tests/eta_guarantee.rs:
tests/common/mod.rs:
