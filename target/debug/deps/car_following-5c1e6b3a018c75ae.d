/root/repo/target/debug/deps/car_following-5c1e6b3a018c75ae.d: crates/car-following/src/lib.rs crates/car-following/src/cruise.rs crates/car-following/src/scenario.rs

/root/repo/target/debug/deps/libcar_following-5c1e6b3a018c75ae.rlib: crates/car-following/src/lib.rs crates/car-following/src/cruise.rs crates/car-following/src/scenario.rs

/root/repo/target/debug/deps/libcar_following-5c1e6b3a018c75ae.rmeta: crates/car-following/src/lib.rs crates/car-following/src/cruise.rs crates/car-following/src/scenario.rs

crates/car-following/src/lib.rs:
crates/car-following/src/cruise.rs:
crates/car-following/src/scenario.rs:
