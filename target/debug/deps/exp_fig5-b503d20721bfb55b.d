/root/repo/target/debug/deps/exp_fig5-b503d20721bfb55b.d: crates/bench/src/bin/exp_fig5.rs

/root/repo/target/debug/deps/libexp_fig5-b503d20721bfb55b.rmeta: crates/bench/src/bin/exp_fig5.rs

crates/bench/src/bin/exp_fig5.rs:
