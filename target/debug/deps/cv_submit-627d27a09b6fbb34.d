/root/repo/target/debug/deps/cv_submit-627d27a09b6fbb34.d: crates/server/src/bin/cv-submit.rs

/root/repo/target/debug/deps/libcv_submit-627d27a09b6fbb34.rmeta: crates/server/src/bin/cv-submit.rs

crates/server/src/bin/cv-submit.rs:
