/root/repo/target/debug/deps/cv_serve-45130afa1a2ea25d.d: crates/server/src/bin/cv-serve.rs

/root/repo/target/debug/deps/libcv_serve-45130afa1a2ea25d.rmeta: crates/server/src/bin/cv-serve.rs

crates/server/src/bin/cv-serve.rs:
