/root/repo/target/debug/deps/cv_dynamics-2f3c72457969880f.d: crates/dynamics/src/lib.rs crates/dynamics/src/limits.rs crates/dynamics/src/state.rs crates/dynamics/src/trajectory.rs

/root/repo/target/debug/deps/cv_dynamics-2f3c72457969880f: crates/dynamics/src/lib.rs crates/dynamics/src/limits.rs crates/dynamics/src/state.rs crates/dynamics/src/trajectory.rs

crates/dynamics/src/lib.rs:
crates/dynamics/src/limits.rs:
crates/dynamics/src/state.rs:
crates/dynamics/src/trajectory.rs:
