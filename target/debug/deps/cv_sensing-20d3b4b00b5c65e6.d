/root/repo/target/debug/deps/cv_sensing-20d3b4b00b5c65e6.d: crates/sensing/src/lib.rs crates/sensing/src/measurement.rs crates/sensing/src/sensor.rs

/root/repo/target/debug/deps/cv_sensing-20d3b4b00b5c65e6: crates/sensing/src/lib.rs crates/sensing/src/measurement.rs crates/sensing/src/sensor.rs

crates/sensing/src/lib.rs:
crates/sensing/src/measurement.rs:
crates/sensing/src/sensor.rs:
