/root/repo/target/debug/deps/cv_planner-929540bb2b8b4e5f.d: crates/planner/src/lib.rs crates/planner/src/cloning.rs crates/planner/src/nn_planner.rs crates/planner/src/teacher.rs

/root/repo/target/debug/deps/cv_planner-929540bb2b8b4e5f: crates/planner/src/lib.rs crates/planner/src/cloning.rs crates/planner/src/nn_planner.rs crates/planner/src/teacher.rs

crates/planner/src/lib.rs:
crates/planner/src/cloning.rs:
crates/planner/src/nn_planner.rs:
crates/planner/src/teacher.rs:
