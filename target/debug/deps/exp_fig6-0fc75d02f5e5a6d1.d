/root/repo/target/debug/deps/exp_fig6-0fc75d02f5e5a6d1.d: crates/bench/src/bin/exp_fig6.rs

/root/repo/target/debug/deps/exp_fig6-0fc75d02f5e5a6d1: crates/bench/src/bin/exp_fig6.rs

crates/bench/src/bin/exp_fig6.rs:
