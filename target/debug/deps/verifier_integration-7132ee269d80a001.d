/root/repo/target/debug/deps/verifier_integration-7132ee269d80a001.d: tests/verifier_integration.rs

/root/repo/target/debug/deps/verifier_integration-7132ee269d80a001: tests/verifier_integration.rs

tests/verifier_integration.rs:
