/root/repo/target/debug/deps/left_turn-e6500c87a568d3c5.d: crates/left-turn/src/lib.rs crates/left-turn/src/geometry.rs crates/left-turn/src/scenario.rs crates/left-turn/src/tau.rs crates/left-turn/src/verify.rs

/root/repo/target/debug/deps/libleft_turn-e6500c87a568d3c5.rlib: crates/left-turn/src/lib.rs crates/left-turn/src/geometry.rs crates/left-turn/src/scenario.rs crates/left-turn/src/tau.rs crates/left-turn/src/verify.rs

/root/repo/target/debug/deps/libleft_turn-e6500c87a568d3c5.rmeta: crates/left-turn/src/lib.rs crates/left-turn/src/geometry.rs crates/left-turn/src/scenario.rs crates/left-turn/src/tau.rs crates/left-turn/src/verify.rs

crates/left-turn/src/lib.rs:
crates/left-turn/src/geometry.rs:
crates/left-turn/src/scenario.rs:
crates/left-turn/src/tau.rs:
crates/left-turn/src/verify.rs:
