/root/repo/target/debug/deps/cv_rng-b1e5618fdb62bed5.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/cv_rng-b1e5618fdb62bed5: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
