/root/repo/target/debug/deps/cv_sim-0b4e4d6d6541fd99.d: crates/sim/src/lib.rs crates/sim/src/batch.rs crates/sim/src/config.rs crates/sim/src/driver.rs crates/sim/src/episode.rs crates/sim/src/metrics.rs crates/sim/src/stack.rs crates/sim/src/training.rs

/root/repo/target/debug/deps/cv_sim-0b4e4d6d6541fd99: crates/sim/src/lib.rs crates/sim/src/batch.rs crates/sim/src/config.rs crates/sim/src/driver.rs crates/sim/src/episode.rs crates/sim/src/metrics.rs crates/sim/src/stack.rs crates/sim/src/training.rs

crates/sim/src/lib.rs:
crates/sim/src/batch.rs:
crates/sim/src/config.rs:
crates/sim/src/driver.rs:
crates/sim/src/episode.rs:
crates/sim/src/metrics.rs:
crates/sim/src/stack.rs:
crates/sim/src/training.rs:
