/root/repo/target/debug/deps/hunt-37127302896ecaf4.d: crates/bench/src/bin/hunt.rs

/root/repo/target/debug/deps/hunt-37127302896ecaf4: crates/bench/src/bin/hunt.rs

crates/bench/src/bin/hunt.rs:
