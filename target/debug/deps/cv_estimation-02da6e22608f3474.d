/root/repo/target/debug/deps/cv_estimation-02da6e22608f3474.d: crates/estimation/src/lib.rs crates/estimation/src/estimate.rs crates/estimation/src/estimator.rs crates/estimation/src/fusion.rs crates/estimation/src/interval.rs crates/estimation/src/kalman.rs crates/estimation/src/linalg.rs crates/estimation/src/reachability.rs crates/estimation/src/tracking.rs

/root/repo/target/debug/deps/libcv_estimation-02da6e22608f3474.rmeta: crates/estimation/src/lib.rs crates/estimation/src/estimate.rs crates/estimation/src/estimator.rs crates/estimation/src/fusion.rs crates/estimation/src/interval.rs crates/estimation/src/kalman.rs crates/estimation/src/linalg.rs crates/estimation/src/reachability.rs crates/estimation/src/tracking.rs

crates/estimation/src/lib.rs:
crates/estimation/src/estimate.rs:
crates/estimation/src/estimator.rs:
crates/estimation/src/fusion.rs:
crates/estimation/src/interval.rs:
crates/estimation/src/kalman.rs:
crates/estimation/src/linalg.rs:
crates/estimation/src/reachability.rs:
crates/estimation/src/tracking.rs:
