/root/repo/target/debug/deps/left_turn-5c4e785bb36c7ad2.d: crates/left-turn/src/lib.rs crates/left-turn/src/geometry.rs crates/left-turn/src/scenario.rs crates/left-turn/src/tau.rs crates/left-turn/src/verify.rs

/root/repo/target/debug/deps/left_turn-5c4e785bb36c7ad2: crates/left-turn/src/lib.rs crates/left-turn/src/geometry.rs crates/left-turn/src/scenario.rs crates/left-turn/src/tau.rs crates/left-turn/src/verify.rs

crates/left-turn/src/lib.rs:
crates/left-turn/src/geometry.rs:
crates/left-turn/src/scenario.rs:
crates/left-turn/src/tau.rs:
crates/left-turn/src/verify.rs:
