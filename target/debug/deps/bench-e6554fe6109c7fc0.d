/root/repo/target/debug/deps/bench-e6554fe6109c7fc0.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/bench-e6554fe6109c7fc0: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
