/root/repo/target/debug/deps/cv_dynamics-74b9b4b493911492.d: crates/dynamics/src/lib.rs crates/dynamics/src/limits.rs crates/dynamics/src/state.rs crates/dynamics/src/trajectory.rs

/root/repo/target/debug/deps/libcv_dynamics-74b9b4b493911492.rmeta: crates/dynamics/src/lib.rs crates/dynamics/src/limits.rs crates/dynamics/src/state.rs crates/dynamics/src/trajectory.rs

crates/dynamics/src/lib.rs:
crates/dynamics/src/limits.rs:
crates/dynamics/src/state.rs:
crates/dynamics/src/trajectory.rs:
