/root/repo/target/debug/deps/bench-1608d1a33c66fabb.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libbench-1608d1a33c66fabb.rlib: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libbench-1608d1a33c66fabb.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
