/root/repo/target/debug/deps/cv_comm-b97dde7b5178da94.d: crates/comm/src/lib.rs crates/comm/src/channel.rs crates/comm/src/message.rs crates/comm/src/setting.rs

/root/repo/target/debug/deps/libcv_comm-b97dde7b5178da94.rlib: crates/comm/src/lib.rs crates/comm/src/channel.rs crates/comm/src/message.rs crates/comm/src/setting.rs

/root/repo/target/debug/deps/libcv_comm-b97dde7b5178da94.rmeta: crates/comm/src/lib.rs crates/comm/src/channel.rs crates/comm/src/message.rs crates/comm/src/setting.rs

crates/comm/src/lib.rs:
crates/comm/src/channel.rs:
crates/comm/src/message.rs:
crates/comm/src/setting.rs:
