/root/repo/target/debug/deps/bench-0f3348338109b1d1.d: crates/bench/src/lib.rs crates/bench/src/timing.rs

/root/repo/target/debug/deps/libbench-0f3348338109b1d1.rmeta: crates/bench/src/lib.rs crates/bench/src/timing.rs

crates/bench/src/lib.rs:
crates/bench/src/timing.rs:
