/root/repo/target/debug/deps/episode-f00dae461d3b81a7.d: crates/bench/benches/episode.rs

/root/repo/target/debug/deps/episode-f00dae461d3b81a7: crates/bench/benches/episode.rs

crates/bench/benches/episode.rs:
