/root/repo/target/debug/deps/cv_comm-2332418d22e7c56e.d: crates/comm/src/lib.rs crates/comm/src/channel.rs crates/comm/src/message.rs crates/comm/src/setting.rs

/root/repo/target/debug/deps/cv_comm-2332418d22e7c56e: crates/comm/src/lib.rs crates/comm/src/channel.rs crates/comm/src/message.rs crates/comm/src/setting.rs

crates/comm/src/lib.rs:
crates/comm/src/channel.rs:
crates/comm/src/message.rs:
crates/comm/src/setting.rs:
