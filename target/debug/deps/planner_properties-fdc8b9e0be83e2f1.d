/root/repo/target/debug/deps/planner_properties-fdc8b9e0be83e2f1.d: tests/planner_properties.rs

/root/repo/target/debug/deps/planner_properties-fdc8b9e0be83e2f1: tests/planner_properties.rs

tests/planner_properties.rs:
