/root/repo/target/debug/deps/cv_estimation-c201f074013ea6fe.d: crates/estimation/src/lib.rs crates/estimation/src/estimate.rs crates/estimation/src/estimator.rs crates/estimation/src/fusion.rs crates/estimation/src/interval.rs crates/estimation/src/kalman.rs crates/estimation/src/linalg.rs crates/estimation/src/reachability.rs crates/estimation/src/tracking.rs

/root/repo/target/debug/deps/cv_estimation-c201f074013ea6fe: crates/estimation/src/lib.rs crates/estimation/src/estimate.rs crates/estimation/src/estimator.rs crates/estimation/src/fusion.rs crates/estimation/src/interval.rs crates/estimation/src/kalman.rs crates/estimation/src/linalg.rs crates/estimation/src/reachability.rs crates/estimation/src/tracking.rs

crates/estimation/src/lib.rs:
crates/estimation/src/estimate.rs:
crates/estimation/src/estimator.rs:
crates/estimation/src/fusion.rs:
crates/estimation/src/interval.rs:
crates/estimation/src/kalman.rs:
crates/estimation/src/linalg.rs:
crates/estimation/src/reachability.rs:
crates/estimation/src/tracking.rs:
