/root/repo/target/debug/deps/cv_server-de5a8c06bc3bad0f.d: crates/server/src/lib.rs crates/server/src/client.rs crates/server/src/protocol.rs crates/server/src/queue.rs crates/server/src/server.rs crates/server/src/wire.rs crates/server/src/worker.rs

/root/repo/target/debug/deps/cv_server-de5a8c06bc3bad0f: crates/server/src/lib.rs crates/server/src/client.rs crates/server/src/protocol.rs crates/server/src/queue.rs crates/server/src/server.rs crates/server/src/wire.rs crates/server/src/worker.rs

crates/server/src/lib.rs:
crates/server/src/client.rs:
crates/server/src/protocol.rs:
crates/server/src/queue.rs:
crates/server/src/server.rs:
crates/server/src/wire.rs:
crates/server/src/worker.rs:
