/root/repo/target/debug/deps/planner_step-aad94fb6f4eb8521.d: crates/bench/benches/planner_step.rs

/root/repo/target/debug/deps/planner_step-aad94fb6f4eb8521: crates/bench/benches/planner_step.rs

crates/bench/benches/planner_step.rs:
