/root/repo/target/debug/deps/exp_fig5-692232939c405e28.d: crates/bench/src/bin/exp_fig5.rs

/root/repo/target/debug/deps/exp_fig5-692232939c405e28: crates/bench/src/bin/exp_fig5.rs

crates/bench/src/bin/exp_fig5.rs:
