/root/repo/target/debug/deps/safe_shield-163e3a3e4caba1b2.d: crates/core/src/lib.rs crates/core/src/aggressive.rs crates/core/src/compound.rs crates/core/src/eval.rs crates/core/src/monitor.rs crates/core/src/multi.rs crates/core/src/observation.rs crates/core/src/planner.rs crates/core/src/scenario.rs

/root/repo/target/debug/deps/safe_shield-163e3a3e4caba1b2: crates/core/src/lib.rs crates/core/src/aggressive.rs crates/core/src/compound.rs crates/core/src/eval.rs crates/core/src/monitor.rs crates/core/src/multi.rs crates/core/src/observation.rs crates/core/src/planner.rs crates/core/src/scenario.rs

crates/core/src/lib.rs:
crates/core/src/aggressive.rs:
crates/core/src/compound.rs:
crates/core/src/eval.rs:
crates/core/src/monitor.rs:
crates/core/src/multi.rs:
crates/core/src/observation.rs:
crates/core/src/planner.rs:
crates/core/src/scenario.rs:
