/root/repo/target/debug/deps/exp_ablation-0f7c4b6f2e9f8c87.d: crates/bench/src/bin/exp_ablation.rs

/root/repo/target/debug/deps/exp_ablation-0f7c4b6f2e9f8c87: crates/bench/src/bin/exp_ablation.rs

crates/bench/src/bin/exp_ablation.rs:
