/root/repo/target/debug/deps/left_turn-87160406ce78800e.d: crates/left-turn/src/lib.rs crates/left-turn/src/geometry.rs crates/left-turn/src/scenario.rs crates/left-turn/src/tau.rs crates/left-turn/src/verify.rs

/root/repo/target/debug/deps/libleft_turn-87160406ce78800e.rmeta: crates/left-turn/src/lib.rs crates/left-turn/src/geometry.rs crates/left-turn/src/scenario.rs crates/left-turn/src/tau.rs crates/left-turn/src/verify.rs

crates/left-turn/src/lib.rs:
crates/left-turn/src/geometry.rs:
crates/left-turn/src/scenario.rs:
crates/left-turn/src/tau.rs:
crates/left-turn/src/verify.rs:
