/root/repo/target/debug/deps/properties-b1106897dfb3f1d1.d: tests/properties.rs tests/common/mod.rs

/root/repo/target/debug/deps/properties-b1106897dfb3f1d1: tests/properties.rs tests/common/mod.rs

tests/properties.rs:
tests/common/mod.rs:
