/root/repo/target/debug/deps/cv_sensing-fe2236bba1a461ac.d: crates/sensing/src/lib.rs crates/sensing/src/measurement.rs crates/sensing/src/sensor.rs

/root/repo/target/debug/deps/libcv_sensing-fe2236bba1a461ac.rlib: crates/sensing/src/lib.rs crates/sensing/src/measurement.rs crates/sensing/src/sensor.rs

/root/repo/target/debug/deps/libcv_sensing-fe2236bba1a461ac.rmeta: crates/sensing/src/lib.rs crates/sensing/src/measurement.rs crates/sensing/src/sensor.rs

crates/sensing/src/lib.rs:
crates/sensing/src/measurement.rs:
crates/sensing/src/sensor.rs:
