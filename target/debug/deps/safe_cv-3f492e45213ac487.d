/root/repo/target/debug/deps/safe_cv-3f492e45213ac487.d: src/lib.rs

/root/repo/target/debug/deps/libsafe_cv-3f492e45213ac487.rlib: src/lib.rs

/root/repo/target/debug/deps/libsafe_cv-3f492e45213ac487.rmeta: src/lib.rs

src/lib.rs:
