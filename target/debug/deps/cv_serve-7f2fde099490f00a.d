/root/repo/target/debug/deps/cv_serve-7f2fde099490f00a.d: crates/server/src/bin/cv-serve.rs

/root/repo/target/debug/deps/cv_serve-7f2fde099490f00a: crates/server/src/bin/cv-serve.rs

crates/server/src/bin/cv-serve.rs:
