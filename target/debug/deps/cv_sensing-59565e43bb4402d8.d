/root/repo/target/debug/deps/cv_sensing-59565e43bb4402d8.d: crates/sensing/src/lib.rs crates/sensing/src/measurement.rs crates/sensing/src/sensor.rs

/root/repo/target/debug/deps/libcv_sensing-59565e43bb4402d8.rmeta: crates/sensing/src/lib.rs crates/sensing/src/measurement.rs crates/sensing/src/sensor.rs

crates/sensing/src/lib.rs:
crates/sensing/src/measurement.rs:
crates/sensing/src/sensor.rs:
