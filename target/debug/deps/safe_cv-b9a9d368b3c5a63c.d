/root/repo/target/debug/deps/safe_cv-b9a9d368b3c5a63c.d: src/lib.rs

/root/repo/target/debug/deps/safe_cv-b9a9d368b3c5a63c: src/lib.rs

src/lib.rs:
