/root/repo/target/debug/deps/cv_planner-3dc531f8a6014227.d: crates/planner/src/lib.rs crates/planner/src/cloning.rs crates/planner/src/nn_planner.rs crates/planner/src/teacher.rs

/root/repo/target/debug/deps/libcv_planner-3dc531f8a6014227.rlib: crates/planner/src/lib.rs crates/planner/src/cloning.rs crates/planner/src/nn_planner.rs crates/planner/src/teacher.rs

/root/repo/target/debug/deps/libcv_planner-3dc531f8a6014227.rmeta: crates/planner/src/lib.rs crates/planner/src/cloning.rs crates/planner/src/nn_planner.rs crates/planner/src/teacher.rs

crates/planner/src/lib.rs:
crates/planner/src/cloning.rs:
crates/planner/src/nn_planner.rs:
crates/planner/src/teacher.rs:
