/root/repo/target/debug/deps/cv_sim-72dfdb5636bae8d2.d: crates/sim/src/lib.rs crates/sim/src/batch.rs crates/sim/src/config.rs crates/sim/src/driver.rs crates/sim/src/episode.rs crates/sim/src/metrics.rs crates/sim/src/stack.rs crates/sim/src/training.rs

/root/repo/target/debug/deps/libcv_sim-72dfdb5636bae8d2.rmeta: crates/sim/src/lib.rs crates/sim/src/batch.rs crates/sim/src/config.rs crates/sim/src/driver.rs crates/sim/src/episode.rs crates/sim/src/metrics.rs crates/sim/src/stack.rs crates/sim/src/training.rs

crates/sim/src/lib.rs:
crates/sim/src/batch.rs:
crates/sim/src/config.rs:
crates/sim/src/driver.rs:
crates/sim/src/episode.rs:
crates/sim/src/metrics.rs:
crates/sim/src/stack.rs:
crates/sim/src/training.rs:
