/root/repo/target/debug/deps/safety_guarantee-03710b3c8b0423ba.d: tests/safety_guarantee.rs tests/common/mod.rs

/root/repo/target/debug/deps/safety_guarantee-03710b3c8b0423ba: tests/safety_guarantee.rs tests/common/mod.rs

tests/safety_guarantee.rs:
tests/common/mod.rs:
