/root/repo/target/debug/deps/cv_server-d7c422204b1e1885.d: crates/server/src/lib.rs crates/server/src/client.rs crates/server/src/protocol.rs crates/server/src/queue.rs crates/server/src/server.rs crates/server/src/wire.rs crates/server/src/worker.rs

/root/repo/target/debug/deps/libcv_server-d7c422204b1e1885.rlib: crates/server/src/lib.rs crates/server/src/client.rs crates/server/src/protocol.rs crates/server/src/queue.rs crates/server/src/server.rs crates/server/src/wire.rs crates/server/src/worker.rs

/root/repo/target/debug/deps/libcv_server-d7c422204b1e1885.rmeta: crates/server/src/lib.rs crates/server/src/client.rs crates/server/src/protocol.rs crates/server/src/queue.rs crates/server/src/server.rs crates/server/src/wire.rs crates/server/src/worker.rs

crates/server/src/lib.rs:
crates/server/src/client.rs:
crates/server/src/protocol.rs:
crates/server/src/queue.rs:
crates/server/src/server.rs:
crates/server/src/wire.rs:
crates/server/src/worker.rs:
