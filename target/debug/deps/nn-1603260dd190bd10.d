/root/repo/target/debug/deps/nn-1603260dd190bd10.d: crates/bench/benches/nn.rs

/root/repo/target/debug/deps/nn-1603260dd190bd10: crates/bench/benches/nn.rs

crates/bench/benches/nn.rs:
