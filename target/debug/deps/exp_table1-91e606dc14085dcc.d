/root/repo/target/debug/deps/exp_table1-91e606dc14085dcc.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/debug/deps/libexp_table1-91e606dc14085dcc.rmeta: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
