/root/repo/target/debug/deps/hunt-8828599987444fef.d: crates/bench/src/bin/hunt.rs

/root/repo/target/debug/deps/libhunt-8828599987444fef.rmeta: crates/bench/src/bin/hunt.rs

crates/bench/src/bin/hunt.rs:
