/root/repo/target/debug/deps/exp_ablation-fd3294b25b12e6eb.d: crates/bench/src/bin/exp_ablation.rs

/root/repo/target/debug/deps/libexp_ablation-fd3294b25b12e6eb.rmeta: crates/bench/src/bin/exp_ablation.rs

crates/bench/src/bin/exp_ablation.rs:
