/root/repo/target/debug/deps/estimation-5546fe59c3347502.d: crates/bench/benches/estimation.rs

/root/repo/target/debug/deps/estimation-5546fe59c3347502: crates/bench/benches/estimation.rs

crates/bench/benches/estimation.rs:
