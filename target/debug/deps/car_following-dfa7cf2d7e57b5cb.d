/root/repo/target/debug/deps/car_following-dfa7cf2d7e57b5cb.d: crates/car-following/src/lib.rs crates/car-following/src/cruise.rs crates/car-following/src/scenario.rs

/root/repo/target/debug/deps/car_following-dfa7cf2d7e57b5cb: crates/car-following/src/lib.rs crates/car-following/src/cruise.rs crates/car-following/src/scenario.rs

crates/car-following/src/lib.rs:
crates/car-following/src/cruise.rs:
crates/car-following/src/scenario.rs:
