/root/repo/target/debug/deps/exp_ablation-7ef0bed5f3bd17ad.d: crates/bench/src/bin/exp_ablation.rs

/root/repo/target/debug/deps/exp_ablation-7ef0bed5f3bd17ad: crates/bench/src/bin/exp_ablation.rs

crates/bench/src/bin/exp_ablation.rs:
