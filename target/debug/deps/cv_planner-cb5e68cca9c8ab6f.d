/root/repo/target/debug/deps/cv_planner-cb5e68cca9c8ab6f.d: crates/planner/src/lib.rs crates/planner/src/cloning.rs crates/planner/src/nn_planner.rs crates/planner/src/teacher.rs

/root/repo/target/debug/deps/libcv_planner-cb5e68cca9c8ab6f.rmeta: crates/planner/src/lib.rs crates/planner/src/cloning.rs crates/planner/src/nn_planner.rs crates/planner/src/teacher.rs

crates/planner/src/lib.rs:
crates/planner/src/cloning.rs:
crates/planner/src/nn_planner.rs:
crates/planner/src/teacher.rs:
