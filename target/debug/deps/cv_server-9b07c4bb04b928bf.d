/root/repo/target/debug/deps/cv_server-9b07c4bb04b928bf.d: crates/server/src/lib.rs crates/server/src/client.rs crates/server/src/protocol.rs crates/server/src/queue.rs crates/server/src/server.rs crates/server/src/wire.rs crates/server/src/worker.rs

/root/repo/target/debug/deps/libcv_server-9b07c4bb04b928bf.rmeta: crates/server/src/lib.rs crates/server/src/client.rs crates/server/src/protocol.rs crates/server/src/queue.rs crates/server/src/server.rs crates/server/src/wire.rs crates/server/src/worker.rs

crates/server/src/lib.rs:
crates/server/src/client.rs:
crates/server/src/protocol.rs:
crates/server/src/queue.rs:
crates/server/src/server.rs:
crates/server/src/wire.rs:
crates/server/src/worker.rs:
