/root/repo/target/debug/deps/car_following-061a8b215ee1db92.d: crates/car-following/src/lib.rs crates/car-following/src/cruise.rs crates/car-following/src/scenario.rs

/root/repo/target/debug/deps/libcar_following-061a8b215ee1db92.rmeta: crates/car-following/src/lib.rs crates/car-following/src/cruise.rs crates/car-following/src/scenario.rs

crates/car-following/src/lib.rs:
crates/car-following/src/cruise.rs:
crates/car-following/src/scenario.rs:
