/root/repo/target/debug/deps/cv_dynamics-2bfcc18180deffce.d: crates/dynamics/src/lib.rs crates/dynamics/src/limits.rs crates/dynamics/src/state.rs crates/dynamics/src/trajectory.rs

/root/repo/target/debug/deps/libcv_dynamics-2bfcc18180deffce.rlib: crates/dynamics/src/lib.rs crates/dynamics/src/limits.rs crates/dynamics/src/state.rs crates/dynamics/src/trajectory.rs

/root/repo/target/debug/deps/libcv_dynamics-2bfcc18180deffce.rmeta: crates/dynamics/src/lib.rs crates/dynamics/src/limits.rs crates/dynamics/src/state.rs crates/dynamics/src/trajectory.rs

crates/dynamics/src/lib.rs:
crates/dynamics/src/limits.rs:
crates/dynamics/src/state.rs:
crates/dynamics/src/trajectory.rs:
