/root/repo/target/debug/deps/cv_serve-c57e1cb99c65e7d1.d: crates/server/src/bin/cv-serve.rs

/root/repo/target/debug/deps/cv_serve-c57e1cb99c65e7d1: crates/server/src/bin/cv-serve.rs

crates/server/src/bin/cv-serve.rs:
