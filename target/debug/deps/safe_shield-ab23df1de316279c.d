/root/repo/target/debug/deps/safe_shield-ab23df1de316279c.d: crates/core/src/lib.rs crates/core/src/aggressive.rs crates/core/src/compound.rs crates/core/src/eval.rs crates/core/src/monitor.rs crates/core/src/multi.rs crates/core/src/observation.rs crates/core/src/planner.rs crates/core/src/scenario.rs

/root/repo/target/debug/deps/libsafe_shield-ab23df1de316279c.rmeta: crates/core/src/lib.rs crates/core/src/aggressive.rs crates/core/src/compound.rs crates/core/src/eval.rs crates/core/src/monitor.rs crates/core/src/multi.rs crates/core/src/observation.rs crates/core/src/planner.rs crates/core/src/scenario.rs

crates/core/src/lib.rs:
crates/core/src/aggressive.rs:
crates/core/src/compound.rs:
crates/core/src/eval.rs:
crates/core/src/monitor.rs:
crates/core/src/multi.rs:
crates/core/src/observation.rs:
crates/core/src/planner.rs:
crates/core/src/scenario.rs:
