/root/repo/target/debug/deps/experiments-bb3d7e29d5bf3a86.d: crates/bench/benches/experiments.rs

/root/repo/target/debug/deps/experiments-bb3d7e29d5bf3a86: crates/bench/benches/experiments.rs

crates/bench/benches/experiments.rs:
