/root/repo/target/debug/deps/verify_shield-c21b4ec547c5a6ce.d: crates/bench/src/bin/verify_shield.rs

/root/repo/target/debug/deps/verify_shield-c21b4ec547c5a6ce: crates/bench/src/bin/verify_shield.rs

crates/bench/src/bin/verify_shield.rs:
