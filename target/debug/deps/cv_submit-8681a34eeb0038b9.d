/root/repo/target/debug/deps/cv_submit-8681a34eeb0038b9.d: crates/server/src/bin/cv-submit.rs

/root/repo/target/debug/deps/cv_submit-8681a34eeb0038b9: crates/server/src/bin/cv-submit.rs

crates/server/src/bin/cv-submit.rs:
