/root/repo/target/debug/deps/exp_fig6-5412dfe971f299aa.d: crates/bench/src/bin/exp_fig6.rs

/root/repo/target/debug/deps/libexp_fig6-5412dfe971f299aa.rmeta: crates/bench/src/bin/exp_fig6.rs

crates/bench/src/bin/exp_fig6.rs:
