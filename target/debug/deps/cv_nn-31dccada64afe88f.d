/root/repo/target/debug/deps/cv_nn-31dccada64afe88f.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/error.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/matrix.rs crates/nn/src/mlp.rs crates/nn/src/optimizer.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/libcv_nn-31dccada64afe88f.rmeta: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/error.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/matrix.rs crates/nn/src/mlp.rs crates/nn/src/optimizer.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/error.rs:
crates/nn/src/layer.rs:
crates/nn/src/loss.rs:
crates/nn/src/matrix.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optimizer.rs:
crates/nn/src/train.rs:
