/root/repo/target/debug/deps/safe_cv-cb5a1f1ac8e177bd.d: src/lib.rs

/root/repo/target/debug/deps/libsafe_cv-cb5a1f1ac8e177bd.rmeta: src/lib.rs

src/lib.rs:
