/root/repo/target/debug/deps/cv_rng-534a78304fb57434.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libcv_rng-534a78304fb57434.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libcv_rng-534a78304fb57434.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
