/root/repo/target/debug/deps/multi_vehicle-998d75c0fc6dca78.d: tests/multi_vehicle.rs tests/common/mod.rs

/root/repo/target/debug/deps/multi_vehicle-998d75c0fc6dca78: tests/multi_vehicle.rs tests/common/mod.rs

tests/multi_vehicle.rs:
tests/common/mod.rs:
