/root/repo/target/debug/deps/verify_shield-f5c18fec176f4506.d: crates/bench/src/bin/verify_shield.rs

/root/repo/target/debug/deps/libverify_shield-f5c18fec176f4506.rmeta: crates/bench/src/bin/verify_shield.rs

crates/bench/src/bin/verify_shield.rs:
