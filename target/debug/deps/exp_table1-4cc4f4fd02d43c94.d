/root/repo/target/debug/deps/exp_table1-4cc4f4fd02d43c94.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/debug/deps/exp_table1-4cc4f4fd02d43c94: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
