/root/repo/target/debug/deps/exp_table1-1591ccdd9628d513.d: crates/bench/src/bin/exp_table1.rs

/root/repo/target/debug/deps/exp_table1-1591ccdd9628d513: crates/bench/src/bin/exp_table1.rs

crates/bench/src/bin/exp_table1.rs:
