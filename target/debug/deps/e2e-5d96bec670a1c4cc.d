/root/repo/target/debug/deps/e2e-5d96bec670a1c4cc.d: crates/server/tests/e2e.rs

/root/repo/target/debug/deps/e2e-5d96bec670a1c4cc: crates/server/tests/e2e.rs

crates/server/tests/e2e.rs:
