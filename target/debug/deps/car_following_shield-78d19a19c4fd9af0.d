/root/repo/target/debug/deps/car_following_shield-78d19a19c4fd9af0.d: tests/car_following_shield.rs

/root/repo/target/debug/deps/car_following_shield-78d19a19c4fd9af0: tests/car_following_shield.rs

tests/car_following_shield.rs:
