/root/repo/target/debug/deps/hunt-862a635ff80a71be.d: crates/bench/src/bin/hunt.rs

/root/repo/target/debug/deps/hunt-862a635ff80a71be: crates/bench/src/bin/hunt.rs

crates/bench/src/bin/hunt.rs:
