/root/repo/target/debug/deps/cv_nn-49e86554bf6bba94.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/error.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/matrix.rs crates/nn/src/mlp.rs crates/nn/src/optimizer.rs crates/nn/src/train.rs

/root/repo/target/debug/deps/cv_nn-49e86554bf6bba94: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/error.rs crates/nn/src/layer.rs crates/nn/src/loss.rs crates/nn/src/matrix.rs crates/nn/src/mlp.rs crates/nn/src/optimizer.rs crates/nn/src/train.rs

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/error.rs:
crates/nn/src/layer.rs:
crates/nn/src/loss.rs:
crates/nn/src/matrix.rs:
crates/nn/src/mlp.rs:
crates/nn/src/optimizer.rs:
crates/nn/src/train.rs:
