/root/repo/target/debug/deps/exp_table2-8f5ce54fedb308f7.d: crates/bench/src/bin/exp_table2.rs

/root/repo/target/debug/deps/exp_table2-8f5ce54fedb308f7: crates/bench/src/bin/exp_table2.rs

crates/bench/src/bin/exp_table2.rs:
