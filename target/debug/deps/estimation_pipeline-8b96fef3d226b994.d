/root/repo/target/debug/deps/estimation_pipeline-8b96fef3d226b994.d: tests/estimation_pipeline.rs

/root/repo/target/debug/deps/estimation_pipeline-8b96fef3d226b994: tests/estimation_pipeline.rs

tests/estimation_pipeline.rs:
