/root/repo/target/debug/deps/exp_table2-13f60864305f8055.d: crates/bench/src/bin/exp_table2.rs

/root/repo/target/debug/deps/libexp_table2-13f60864305f8055.rmeta: crates/bench/src/bin/exp_table2.rs

crates/bench/src/bin/exp_table2.rs:
