/root/repo/target/debug/deps/exp_fig5-064cfcfc4e618561.d: crates/bench/src/bin/exp_fig5.rs

/root/repo/target/debug/deps/exp_fig5-064cfcfc4e618561: crates/bench/src/bin/exp_fig5.rs

crates/bench/src/bin/exp_fig5.rs:
