/root/repo/target/debug/deps/cv_rng-afdbc1a5ef414d87.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libcv_rng-afdbc1a5ef414d87.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
