/root/repo/target/debug/deps/cv_submit-bcac56d2776a9b1d.d: crates/server/src/bin/cv-submit.rs

/root/repo/target/debug/deps/cv_submit-bcac56d2776a9b1d: crates/server/src/bin/cv-submit.rs

crates/server/src/bin/cv-submit.rs:
