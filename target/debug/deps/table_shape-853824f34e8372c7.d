/root/repo/target/debug/deps/table_shape-853824f34e8372c7.d: tests/table_shape.rs tests/common/mod.rs

/root/repo/target/debug/deps/table_shape-853824f34e8372c7: tests/table_shape.rs tests/common/mod.rs

tests/table_shape.rs:
tests/common/mod.rs:
