/root/repo/target/debug/deps/cv_comm-9cf3b3ae70573c3a.d: crates/comm/src/lib.rs crates/comm/src/channel.rs crates/comm/src/message.rs crates/comm/src/setting.rs

/root/repo/target/debug/deps/libcv_comm-9cf3b3ae70573c3a.rmeta: crates/comm/src/lib.rs crates/comm/src/channel.rs crates/comm/src/message.rs crates/comm/src/setting.rs

crates/comm/src/lib.rs:
crates/comm/src/channel.rs:
crates/comm/src/message.rs:
crates/comm/src/setting.rs:
