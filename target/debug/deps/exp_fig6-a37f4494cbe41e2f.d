/root/repo/target/debug/deps/exp_fig6-a37f4494cbe41e2f.d: crates/bench/src/bin/exp_fig6.rs

/root/repo/target/debug/deps/exp_fig6-a37f4494cbe41e2f: crates/bench/src/bin/exp_fig6.rs

crates/bench/src/bin/exp_fig6.rs:
