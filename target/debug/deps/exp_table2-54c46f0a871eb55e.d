/root/repo/target/debug/deps/exp_table2-54c46f0a871eb55e.d: crates/bench/src/bin/exp_table2.rs

/root/repo/target/debug/deps/exp_table2-54c46f0a871eb55e: crates/bench/src/bin/exp_table2.rs

crates/bench/src/bin/exp_table2.rs:
