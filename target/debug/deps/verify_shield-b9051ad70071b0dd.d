/root/repo/target/debug/deps/verify_shield-b9051ad70071b0dd.d: crates/bench/src/bin/verify_shield.rs

/root/repo/target/debug/deps/verify_shield-b9051ad70071b0dd: crates/bench/src/bin/verify_shield.rs

crates/bench/src/bin/verify_shield.rs:
