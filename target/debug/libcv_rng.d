/root/repo/target/debug/libcv_rng.rlib: /root/repo/crates/rng/src/lib.rs
